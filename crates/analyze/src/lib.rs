//! # rlc-analyze
//!
//! Workspace-aware static analysis enforcing the repo's safety
//! invariants. Six PRs of hardening discipline — `unsafe` confined to
//! `crates/core/src/kernel.rs`, panic-free library surfaces,
//! division-form bound checks on every untrusted length, atomics with
//! documented orderings, a closed deprecation cycle — were enforced by
//! grep gates and reviewer memory; this crate turns them into checked
//! tooling.
//!
//! The analyzer is a three-layer pipeline:
//!
//! 1. a hand-rolled Rust **lexer** ([`lexer`]) — comments, nested block
//!    comments, string/char/raw-string literals, lifetimes — so a banned
//!    construct in documentation is *not* a violation;
//! 2. a **token-tree parser** ([`parse`]) — balanced `{}/()/[]` nesting,
//!    fn/impl/mod item extraction with spans, statement segmentation,
//!    and a by-name call-graph approximation;
//! 3. the **rules** — lexical rules plus an intra-procedural taint
//!    engine ([`dataflow`]) behind `untrusted-length-flow`, and the
//!    workspace-global `lock-order` / `atomic-pairing` rules
//!    ([`locks`]), which run over concurrency facts merged from every
//!    file.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p rlc-analyze -- check --stats
//! cargo run -p rlc-analyze -- check --json
//! cargo run -p rlc-analyze -- rules
//! ```
//!
//! The rule catalog lives in [`rules::RULES`]; findings can be
//! acknowledged in place with `rlc-analyze: allow(<rule>) — <reason>`
//! suppression directives (see [`suppress`]), which are themselves
//! counted, reported, and flagged when stale. Dataflow findings carry
//! machine-readable traces (JSON schema version 2).

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod dataflow;
pub mod lexer;
pub mod locks;
pub mod parse;
pub mod report;
pub mod rules;
pub mod scope;
pub mod suppress;
pub mod walk;

use std::io;
use std::path::Path;

pub use analyze::{analyze_file, analyze_source, resolve, FileAnalysis, FileReport};
pub use report::{CheckOutcome, SuppressionRecord};
pub use rules::{Finding, RULES};

/// Analyzes every workspace source file under `root`.
///
/// I/O errors (unreadable file, missing root) surface as `Err`; rule
/// findings are data, not errors. Phase one runs per file, phase two
/// resolves the workspace-global rules and suppressions over all of
/// them.
pub fn run_check(root: &Path) -> io::Result<CheckOutcome> {
    let files = walk::workspace_files(root)?;
    let mut analyses = Vec::with_capacity(files.len());
    for (rel, abs) in &files {
        let source = std::fs::read_to_string(abs)?;
        analyses.push(analyze::analyze_file(rel, &source));
    }
    let report = analyze::resolve(analyses);
    Ok(CheckOutcome {
        files_scanned: files.len(),
        findings: report.findings,
        shadow_findings: report.shadow,
        suppressions: report
            .suppressions
            .into_iter()
            .map(|(file, s)| SuppressionRecord {
                file,
                line: s.line,
                rule: s.rule,
                reason: s.reason,
                used: s.used,
            })
            .collect(),
    })
}
