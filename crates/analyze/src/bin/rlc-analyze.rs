//! CLI for the workspace static analyzer.
//!
//! ```text
//! rlc-analyze check [--root <path>] [--json] [--stats]
//! rlc-analyze rules
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use rlc_analyze::rules::RULES;

const USAGE: &str = "usage: rlc-analyze <command> [options]

commands:
  check        analyze crates/, src/, tests/, examples/ under the root
  rules        print the rule catalog

options (check):
  --root <path>   workspace root to scan (default: current directory)
  --json          machine-readable output (schema version 2: dataflow
                  traces on findings, shadow_findings channel)
  --stats         print a one-line summary even when the tree is clean
";

struct CheckArgs {
    root: PathBuf,
    json: bool,
    stats: bool,
}

fn parse_check_args(args: &[String]) -> Result<CheckArgs, String> {
    let mut parsed = CheckArgs {
        root: PathBuf::from("."),
        json: false,
        stats: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => parsed.json = true,
            "--stats" => parsed.stats = true,
            "--root" => match iter.next() {
                Some(path) => parsed.root = PathBuf::from(path),
                None => return Err("--root requires a path".to_owned()),
            },
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(parsed)
}

fn run_check(args: &[String]) -> ExitCode {
    let parsed = match parse_check_args(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("rlc-analyze: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = match rlc_analyze::run_check(&parsed.root) {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!(
                "rlc-analyze: failed to scan {}: {error}",
                parsed.root.display()
            );
            return ExitCode::from(2);
        }
    };
    if parsed.json {
        println!("{}", outcome.render_json());
    } else {
        print!("{}", outcome.render_human());
        if parsed.stats || !outcome.is_clean() {
            println!("{}", outcome.render_stats());
        }
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_rules() {
    for rule in RULES {
        let suppress = if rule.shadow {
            "shadow: differential only, never gates"
        } else if rule.suppressible {
            "suppressible"
        } else {
            "not suppressible"
        };
        println!("{:<24} {} [{}]", rule.id, rule.summary, suppress);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
