//! Source classification: which file class a path falls in, which token
//! ranges are test-gated, and which function encloses a token.
//!
//! The rules need three kinds of context the raw token stream does not
//! carry:
//!
//! * **file class** — library code (`src/`, `crates/*/src/` excluding
//!   `src/bin/`) versus tests, examples, benches, and binaries, plus the
//!   one special file (`crates/core/src/kernel.rs`) where `unsafe` and
//!   architecture intrinsics are allowed to live;
//! * **test spans** — token ranges under `#[cfg(test)]` / `#[test]`,
//!   exempt from the library-surface rules;
//! * **function spans** — the innermost named `fn` containing a token,
//!   which the untrusted-length rules use to find binary decode functions
//!   and to scope its search for bound checks.

use crate::lexer::{Token, TokenKind};

/// Path-derived classification of one file.
#[derive(Clone, Copy, Debug)]
pub struct FileClass {
    /// The file is `crates/core/src/kernel.rs`, the one module where
    /// `unsafe` and architecture intrinsics are permitted.
    pub is_kernel: bool,
    /// The file is library-surface code: under `src/` or `crates/*/src/`,
    /// excluding `src/bin/` binary targets.
    pub is_library: bool,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(path: &str) -> FileClass {
    let is_kernel =
        path == "crates/core/src/kernel.rs" || path.ends_with("/crates/core/src/kernel.rs");
    let in_crate_src = path.starts_with("crates/") && path.contains("/src/");
    let in_root_src = path.starts_with("src/");
    let is_bin = path.contains("/src/bin/") || path.starts_with("src/bin/");
    FileClass {
        is_kernel,
        is_library: (in_crate_src || in_root_src) && !is_bin,
    }
}

/// A named function's token span (`start..end`, token indexes).
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Index of the `fn` keyword token.
    pub start: usize,
    /// One past the index of the body's closing brace.
    pub end: usize,
}

/// Token-range classification computed once per file.
#[derive(Debug, Default)]
pub struct Scopes {
    test_spans: Vec<(usize, usize)>,
    fns: Vec<FnSpan>,
}

impl Scopes {
    /// Computes test-gated and function spans for a token stream.
    pub fn compute(tokens: &[Token]) -> Scopes {
        Scopes {
            test_spans: test_spans(tokens),
            fns: fn_spans(tokens),
        }
    }

    /// True if the token at `idx` is inside `#[cfg(test)]`/`#[test]` code.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| idx >= start && idx < end)
    }

    /// The innermost named function containing the token at `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| idx >= f.start && idx < f.end)
            .min_by_key(|f| f.end - f.start)
    }

    /// All function spans in the file, in source order.
    pub fn fns(&self) -> &[FnSpan] {
        &self.fns
    }
}

/// Finds the index one past the bracket that closes the one at `open`,
/// counting only the given delimiter pair. Returns `tokens.len()` when
/// unbalanced (malformed input never panics the analyzer).
fn matching(tokens: &[Token], open: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct(open_ch) {
            depth += 1;
        } else if tokens[i].is_punct(close_ch) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// True if the attribute token range (inside `#[ … ]`) gates test code:
/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` — but not
/// `#[cfg(not(test))]`, which gates *non*-test code.
fn attr_gates_test(idents: &[&str]) -> bool {
    if idents == ["test"] {
        return true;
    }
    idents.contains(&"cfg") && idents.contains(&"test") && !idents.contains(&"not")
}

fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let attr_end = matching(tokens, i + 1, '[', ']');
        let idents: Vec<&str> = tokens[i + 2..attr_end.saturating_sub(1)]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        if !attr_gates_test(&idents) {
            i = attr_end;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = attr_end;
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            j = matching(tokens, j + 1, '[', ']');
        }
        // The gated item runs to its body's closing brace, or to the `;`
        // of a bodiless item. Delimiter depth keeps a `;` inside
        // `[u8; 4]` or a nested block from ending the span early.
        let mut depth = 0usize;
        let mut end = tokens.len();
        let mut k = j;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    end = k + 1;
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                end = k + 1;
                break;
            }
            k += 1;
        }
        spans.push((attr_start, end));
        i = end;
    }
    spans
}

fn fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_fn_item = tokens[i].is_ident("fn")
            && tokens
                .get(i + 1)
                .map(|t| t.kind == TokenKind::Ident)
                .unwrap_or(false);
        if !is_fn_item {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text.clone();
        // Scan the signature for the body `{` (or a `;` for a bodiless
        // trait method), tracking paren/bracket depth so array types like
        // `[u8; 4]` in parameters cannot end the item early.
        let mut depth = 0usize;
        let mut j = i + 2;
        let mut body_open = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct('{') && depth == 0 {
                body_open = Some(j);
                break;
            } else if t.is_punct(';') && depth == 0 {
                break;
            }
            j += 1;
        }
        if let Some(open) = body_open {
            let end = matching(tokens, open, '{', '}');
            fns.push(FnSpan {
                name,
                start: i,
                end,
            });
            // Continue *inside* the body so nested fns are recorded too.
            i += 2;
        } else {
            i = j + 1;
        }
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classifies_paths() {
        assert!(classify("crates/core/src/kernel.rs").is_kernel);
        assert!(classify("crates/core/src/index.rs").is_library);
        assert!(classify("src/lib.rs").is_library);
        assert!(!classify("crates/bench/src/bin/fig3.rs").is_library);
        assert!(!classify("tests/end_to_end.rs").is_library);
        assert!(!classify("examples/quickstart.rs").is_library);
        assert!(!classify("crates/bench/benches/mr_kernel.rs").is_library);
    }

    #[test]
    fn cfg_test_mod_is_a_test_span() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        let lexed = lex(src);
        let scopes = Scopes::compute(&lexed.tokens);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(scopes.in_test(unwrap_idx));
        let lib_idx = lexed.tokens.iter().position(|t| t.is_ident("lib")).unwrap();
        assert!(!scopes.in_test(lib_idx));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(not(test))]\nfn real() { x.unwrap(); }\n";
        let lexed = lex(src);
        let scopes = Scopes::compute(&lexed.tokens);
        let idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(!scopes.in_test(idx));
    }

    #[test]
    fn test_attr_with_stacked_attributes() {
        let src = "#[test]\n#[ignore]\nfn t() { x.unwrap(); }\nfn real() {}\n";
        let lexed = lex(src);
        let scopes = Scopes::compute(&lexed.tokens);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(scopes.in_test(unwrap_idx));
        let real_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("real"))
            .unwrap();
        assert!(!scopes.in_test(real_idx));
    }

    #[test]
    fn enclosing_fn_finds_innermost() {
        let src = "fn outer() { fn inner() { let x = 1; } }";
        let lexed = lex(src);
        let scopes = Scopes::compute(&lexed.tokens);
        let x_idx = lexed.tokens.iter().position(|t| t.is_ident("x")).unwrap();
        assert_eq!(
            scopes.enclosing_fn(x_idx).map(|f| f.name.as_str()),
            Some("inner")
        );
    }

    #[test]
    fn fn_pointer_types_are_not_fn_items() {
        let src = "type F = fn(u32) -> u32; fn real() {}";
        let lexed = lex(src);
        let scopes = Scopes::compute(&lexed.tokens);
        assert_eq!(scopes.fns().len(), 1);
        assert_eq!(scopes.fns()[0].name, "real");
    }

    #[test]
    fn array_params_do_not_truncate_the_span() {
        let src = "#[cfg(test)] fn t(x: [u8; 4]) { y.unwrap(); } fn real() { }";
        let lexed = lex(src);
        let scopes = Scopes::compute(&lexed.tokens);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(scopes.in_test(unwrap_idx));
        let real_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("real"))
            .unwrap();
        assert!(!scopes.in_test(real_idx));
    }
}
