//! EXPLAIN trace trees and the bounded trace journal.
//!
//! A [`TraceNode`] is a machine-readable record of one execution
//! decision: a name, ordered `key → value` attributes, and child nodes.
//! The planner builds one node per batch with one child per query;
//! engines append their routing decisions (cache hit, shard route,
//! stitch counters, kernel lane). Rendering is hand-rolled JSON —
//! this crate stays dependency-free — with the schema:
//!
//! ```json
//! {"name":"batch","attrs":{"k":"v"},"children":[{"name":"query",...}]}
//! ```
//!
//! Attribute values are strings; numeric attributes are rendered in
//! decimal by the writer and re-parsed by consumers that need them.

use crate::lock_recover;
use std::collections::VecDeque;
use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Escapes `s` for inclusion in a JSON string literal (without quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One node of an EXPLAIN trace tree. See the module docs for the JSON
/// schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceNode {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<TraceNode>,
}

impl TraceNode {
    /// A node with no attributes or children.
    pub fn new(name: &str) -> Self {
        TraceNode {
            name: name.to_owned(),
            ..TraceNode::default()
        }
    }

    /// Appends an attribute (insertion order is preserved; keys are not
    /// deduplicated — writers own their key discipline).
    pub fn attr(&mut self, key: &str, value: impl Display) -> &mut Self {
        self.attrs.push((key.to_owned(), value.to_string()));
        self
    }

    /// Appends a child node.
    pub fn child(&mut self, child: TraceNode) -> &mut Self {
        self.children.push(child);
        self
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's attributes, in insertion order.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attrs
    }

    /// The node's children.
    pub fn children(&self) -> &[TraceNode] {
        &self.children
    }

    /// First value of attribute `key`, if present on this node.
    pub fn find_attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Depth-first search for the first node (self included) carrying
    /// attribute `key`; returns its value.
    pub fn find_attr_deep(&self, key: &str) -> Option<&str> {
        self.find_attr(key)
            .or_else(|| self.children.iter().find_map(|c| c.find_attr_deep(key)))
    }

    /// Renders the subtree as one compact JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"attrs\":{{",
            json_escape(&self.name)
        );
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("},\"children\":[");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.write_json(out);
        }
        out.push_str("]}");
    }
}

/// A bounded ring of recent trace trees (the serve layer keeps one per
/// server and exposes it as `GET /admin/explain`).
#[derive(Debug)]
pub struct TraceJournal {
    ring: Mutex<VecDeque<TraceNode>>,
    cap: usize,
}

impl TraceJournal {
    /// A journal retaining at most `cap` trees (`cap == 0` retains none).
    pub fn new(cap: usize) -> Self {
        TraceJournal {
            ring: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
            cap,
        }
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends a tree, evicting the oldest past capacity.
    pub fn push(&self, node: TraceNode) {
        if self.cap == 0 {
            return;
        }
        let mut ring = lock_recover(&self.ring);
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(node);
    }

    /// The most recent `last` trees, newest first.
    pub fn last(&self, last: usize) -> Vec<TraceNode> {
        let ring = lock_recover(&self.ring);
        ring.iter().rev().take(last).cloned().collect()
    }

    /// Number of retained trees.
    pub fn len(&self) -> usize {
        lock_recover(&self.ring).len()
    }

    /// Whether the journal holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_schema_round_trips_the_shape() {
        let mut root = TraceNode::new("batch");
        root.attr("queries", 2).attr("kernel_lane", "generic");
        let mut q = TraceNode::new("query");
        q.attr("route", "stitched")
            .attr("note", "a \"quoted\"\nvalue");
        root.child(q);
        let json = root.to_json();
        assert!(json.starts_with("{\"name\":\"batch\",\"attrs\":{\"queries\":\"2\""));
        assert!(json.contains("\"children\":[{\"name\":\"query\""));
        assert!(json.contains("a \\\"quoted\\\"\\nvalue"));
        assert_eq!(root.find_attr("kernel_lane"), Some("generic"));
        assert_eq!(root.find_attr_deep("route"), Some("stitched"));
        assert_eq!(root.find_attr("route"), None);
    }

    #[test]
    fn journal_is_bounded_and_newest_first() {
        let journal = TraceJournal::new(3);
        for i in 0..5 {
            let mut n = TraceNode::new("t");
            n.attr("i", i);
            journal.push(n);
        }
        assert_eq!(journal.len(), 3);
        let last = journal.last(2);
        assert_eq!(last[0].find_attr("i"), Some("4"));
        assert_eq!(last[1].find_attr("i"), Some("3"));
        assert_eq!(journal.last(10).len(), 3);

        let disabled = TraceJournal::new(0);
        disabled.push(TraceNode::new("t"));
        assert!(disabled.is_empty());
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("t\\n"), "t\\\\n");
    }
}
