//! Log-bucketed power-of-two latency histograms, sharded per thread.
//!
//! A recorded value `v` (nanoseconds by convention) lands in the bucket
//! indexed by its bit length: bucket 0 holds exactly `0`, bucket `b`
//! holds `[2^(b-1), 2^b - 1]`, and bucket 63 absorbs everything from
//! `2^62` up. The scheme needs no configuration, never rebuckets, and
//! bounds every quantile estimate by a factor of two of the true value —
//! the property test pins that bound against a sorted-vector oracle.
//!
//! Recording is `fetch_add` on a per-thread shard (threads are assigned
//! shards round-robin on first use), so concurrent recorders do not
//! contend on one cache line; reading merges the shards observationally.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of buckets: one per possible bit length of a `u64`.
pub const HIST_BUCKETS: usize = 64;

/// Number of per-thread shards. A small power of two: enough to spread
/// the workspace's worker pools, cheap enough to merge on every read.
const SHARDS: usize = 8;

/// Round-robin assignment of threads to shards, made once per thread.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn shard_index() -> usize {
    MY_SHARD.with(|cell| {
        let mut s = cell.get();
        if s == usize::MAX {
            // rlc-analyze: allow(atomic-pairing) — round-robin ticket for shard assignment; no memory is published through it
            s = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            cell.set(s);
        }
        s
    })
}

/// Bucket index of a value: its bit length, clamped to the last bucket.
#[inline]
pub(crate) fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper edge of bucket `b` in recorded units.
pub(crate) fn bucket_edge(b: usize) -> u64 {
    match b {
        0 => 0,
        _ if b >= HIST_BUCKETS - 1 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

/// One shard's cells, padded out by its own allocation granularity.
struct Shard {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A concurrent power-of-two histogram. See the module docs for the
/// bucket scheme; recording is four relaxed atomic adds plus one
/// `fetch_max` on the caller's thread shard.
pub struct Histogram {
    shards: Vec<Shard>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, all-zero histogram.
    pub fn new() -> Self {
        Histogram {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let shard = &self.shards[shard_index() % self.shards.len()];
        // rlc-analyze: allow(atomic-pairing) — observational histogram cells; merged reads tolerate torn cross-cell moments
        shard.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        // rlc-analyze: allow(atomic-pairing) — observational histogram count
        shard.count.fetch_add(1, Ordering::Relaxed);
        // rlc-analyze: allow(atomic-pairing) — observational histogram sum; wrapping is acceptable for ~584 years of nanoseconds
        shard.sum.fetch_add(value, Ordering::Relaxed);
        // rlc-analyze: allow(atomic-pairing) — monotonic max of an observational histogram
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.record(nanos);
    }

    /// Merges every thread shard into one observational snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        for shard in &self.shards {
            for (b, cell) in shard.buckets.iter().enumerate() {
                // rlc-analyze: allow(atomic-pairing) — observational snapshot read
                snap.buckets[b] += cell.load(Ordering::Relaxed);
            }
            // rlc-analyze: allow(atomic-pairing) — observational snapshot read
            snap.count += shard.count.load(Ordering::Relaxed);
            // rlc-analyze: allow(atomic-pairing) — observational snapshot read
            snap.sum = snap.sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
            // rlc-analyze: allow(atomic-pairing) — observational snapshot read
            snap.max = snap.max.max(shard.max.load(Ordering::Relaxed));
        }
        snap
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// A merged, plain-data view of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`Histogram`] for the scheme).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values (wrapping).
    pub sum: u64,
    /// Largest recorded value, tracked exactly.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merges `other` into `self`. Merging is associative and commutative
    /// (bucket-wise sums and a max) — the property tests pin that.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Observations at or below bucket `b`'s upper edge (cumulative count,
    /// as the exposition's `le` buckets report).
    pub fn cumulative(&self, b: usize) -> u64 {
        self.buckets[..=b.min(HIST_BUCKETS - 1)].iter().sum()
    }

    /// Upper bound on the `q`-quantile (0.0 ≤ q ≤ 1.0): the upper edge of
    /// the bucket holding the rank-`⌈q·count⌉` observation, except the
    /// topmost rank which reports the exactly-tracked [`max`]. The
    /// estimate `e` of a true value `x` satisfies `x ≤ e ≤ 2x`.
    ///
    /// [`max`]: HistogramSnapshot::max
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_edge(b).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_the_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Edges are inclusive and consistent with bucket_of.
        for b in 0..HIST_BUCKETS {
            assert_eq!(bucket_of(bucket_edge(b)), b, "edge of bucket {b}");
        }
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 1000, 1_000_000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 2_001_006);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.cumulative(HIST_BUCKETS - 1), 6);
        assert_eq!(s.buckets[0], 1, "zero has its own bucket");
    }

    #[test]
    fn quantiles_of_a_point_mass_report_the_point_bucket() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(700);
        }
        let s = h.snapshot();
        let (p50, p99) = (s.p50(), s.p99());
        assert!((700..=1023).contains(&p50), "p50 {p50}");
        assert!((700..=1023).contains(&p99), "p99 {p99}");
        assert_eq!(s.quantile(1.0), 700, "the top rank reports the true max");
    }
}
