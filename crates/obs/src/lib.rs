//! # rlc-obs
//!
//! Workspace-wide observability with a hard overhead contract. Three
//! layers, all pure std and lock-free on every hot path:
//!
//! * **Metrics** ([`Registry`]): monotonic [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed power-of-two latency [`Histogram`]s whose recording is a
//!   few relaxed atomic adds, sharded per thread to keep concurrent
//!   recorders off each other's cache lines. Snapshots merge the shards
//!   observationally and answer p50/p90/p99/max.
//! * **Spans** ([`span!`]): RAII timers feeding histograms of the global
//!   registry, with a bounded ring-buffer journal of the last spans. When
//!   the global registry is disabled (the default), starting a span is one
//!   relaxed load — no clock read, no allocation.
//! * **EXPLAIN traces** ([`TraceNode`]): a machine-readable tree of
//!   per-query plan decisions (cache hit, shard route, kernel lane,
//!   per-phase timings) rendered as JSON, collected in a bounded
//!   [`TraceJournal`] served by `rlc-serve`'s `GET /admin/explain`.
//!
//! The exposition module ([`expo`]) renders `# TYPE`-annotated text with
//! cumulative histogram buckets, and parses it back — the e2e suite uses
//! the parser to validate `GET /metrics` output against the grammar.
//!
//! The global registry starts **disabled**: libraries instrument freely
//! and pay one atomic load per guarded site until something (a server, a
//! bench, a test) calls [`set_global_enabled`]. Observation never changes
//! answers — the engine differential runs with tracing enabled to prove
//! it.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod expo;
mod hist;
mod registry;
mod span;
mod trace;

pub use hist::{Histogram, HistogramSnapshot, HIST_BUCKETS};
pub use registry::{global, global_enabled, set_global_enabled, Counter, Gauge, Registry};
pub use span::{recent_spans, SpanEvent, SpanGuard};
pub use trace::{json_escape, TraceJournal, TraceNode};

/// Recovers the inner value of a poisoned mutex: every structure in this
/// crate is observational (counters, rings), so a panic mid-update can at
/// worst tear a statistic, never an answer — continuing beats poisoning
/// the whole process's telemetry.
pub(crate) fn lock_recover<'a, T>(lock: &'a std::sync::Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
