//! RAII span timers and the bounded span journal.
//!
//! A [`crate::span!`] site compiles to: one relaxed load of the global
//! enabled flag; if off, nothing else happens — no clock read, no
//! allocation, no journal write. If on, the guard reads the monotonic
//! clock twice (construction and drop) and records the elapsed
//! nanoseconds into a histogram handle cached in the site's `OnceLock`,
//! plus one push into the bounded global journal.

use crate::hist::Histogram;
use crate::lock_recover;
use crate::registry::{global, global_enabled};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One completed span, as the journal remembers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// The span's (histogram) name.
    pub name: &'static str,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
    /// Process-wide completion sequence number (monotone).
    pub seq: u64,
}

/// How many completed spans the global journal retains.
const JOURNAL_CAP: usize = 256;

struct Journal {
    ring: Mutex<VecDeque<SpanEvent>>,
    seq: AtomicU64,
}

static JOURNAL: OnceLock<Journal> = OnceLock::new();

fn journal() -> &'static Journal {
    JOURNAL.get_or_init(|| Journal {
        ring: Mutex::new(VecDeque::with_capacity(JOURNAL_CAP)),
        seq: AtomicU64::new(0),
    })
}

fn journal_push(name: &'static str, nanos: u64) {
    let j = journal();
    // rlc-analyze: allow(atomic-pairing) — journal sequence ticket; ordering across threads is observational
    let seq = j.seq.fetch_add(1, Ordering::Relaxed);
    // rlc-analyze: allow(lock-order) — `len` below is `VecDeque::len` on the guarded ring, not a lock-taking method; the by-name call graph conflates it with the `len` accessors that lock elsewhere
    let mut ring = lock_recover(&j.ring);
    if ring.len() == JOURNAL_CAP {
        ring.pop_front();
    }
    ring.push_back(SpanEvent { name, nanos, seq });
}

/// The most recent `last` completed spans, newest first.
pub fn recent_spans(last: usize) -> Vec<SpanEvent> {
    let ring = lock_recover(&journal().ring);
    ring.iter().rev().take(last).cloned().collect()
}

/// RAII guard of one span. Construct through [`crate::span!`] (or
/// [`SpanGuard::start_site`] directly); the drop records the elapsed time.
#[must_use = "a span measures the scope it is bound to; an unbound span measures nothing"]
pub struct SpanGuard {
    inner: Option<(Arc<Histogram>, &'static str, Instant)>,
}

impl SpanGuard {
    /// Starts a span against the global registry, caching the histogram
    /// handle in the call site's `site` cell. Returns an inert guard (one
    /// relaxed load spent) when the global registry is disabled.
    pub fn start_site(name: &'static str, site: &OnceLock<Arc<Histogram>>) -> SpanGuard {
        if !global_enabled() {
            return SpanGuard { inner: None };
        }
        let hist = Arc::clone(site.get_or_init(|| global().histogram(name)));
        SpanGuard {
            inner: Some((hist, name, Instant::now())),
        }
    }

    /// Whether this guard is live (the registry was enabled at start).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((hist, name, start)) = self.inner.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hist.record(nanos);
            journal_push(name, nanos);
        }
    }
}

/// Opens an RAII span named by its histogram: `let _s = span!("rlc_plan_prepare_seconds");`.
///
/// The name is the histogram key in the [`global`] registry (recorded in
/// nanoseconds; the exposition renders `_seconds` families in seconds).
/// The histogram handle is resolved once per call site.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __RLC_OBS_SITE: std::sync::OnceLock<std::sync::Arc<$crate::Histogram>> =
            std::sync::OnceLock::new();
        $crate::SpanGuard::start_site($name, &__RLC_OBS_SITE)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::set_global_enabled;

    #[test]
    fn disabled_spans_are_inert_and_enabled_spans_record() {
        // Global state: the whole test runs under one lock-step sequence
        // (other tests in this crate do not toggle the global flag).
        set_global_enabled(false);
        {
            let guard = crate::span!("rlc_obs_test_span_seconds");
            assert!(!guard.is_recording());
        }
        let before = global().histogram("rlc_obs_test_span_seconds").snapshot();
        assert_eq!(before.count, 0, "disabled spans record nothing");

        set_global_enabled(true);
        {
            let guard = crate::span!("rlc_obs_test_span_seconds");
            assert!(guard.is_recording());
        }
        set_global_enabled(false);
        let after = global().histogram("rlc_obs_test_span_seconds").snapshot();
        assert_eq!(after.count, 1, "enabled spans record exactly once");
        let recent = recent_spans(JOURNAL_CAP);
        assert!(
            recent.iter().any(|e| e.name == "rlc_obs_test_span_seconds"),
            "the journal saw the span"
        );
    }

    #[test]
    fn journal_is_bounded_and_newest_first() {
        for _ in 0..(JOURNAL_CAP + 10) {
            journal_push("rlc_obs_test_flood", 7);
        }
        let ring = lock_recover(&journal().ring);
        assert!(ring.len() <= JOURNAL_CAP);
        drop(ring);
        let recent = recent_spans(3);
        assert_eq!(recent.len(), 3);
        assert!(
            recent[0].seq > recent[2].seq,
            "newest first: {:?}",
            recent.iter().map(|e| e.seq).collect::<Vec<_>>()
        );
    }
}
