//! The `/metrics` text exposition: rendering and a validating parser.
//!
//! The grammar is the familiar one: `# TYPE <name> <kind>` declares a
//! family, then samples `name{label="value",...} value` follow. Histogram
//! families expose **cumulative** `<name>_bucket{le="..."}` series (each
//! bucket counts every observation at or below its edge), a terminal
//! `le="+Inf"` bucket equal to `<name>_count`, and `<name>_sum` /
//! `<name>_count` series. Histograms record nanoseconds internally;
//! `_seconds` families are rendered in seconds.
//!
//! [`parse`] is the validating inverse used by the e2e metrics-smoke
//! test: it rejects samples of undeclared families, duplicate series
//! (same name and label set), non-cumulative buckets, and histograms
//! whose `+Inf` bucket disagrees with their count.

use crate::hist::HistogramSnapshot;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Display;
use std::fmt::Write as _;

/// Bucket edges rendered for histogram families: every second power of
/// two from 2^10 ns (≈ 1 µs) to 2^34 ns (≈ 17 s). Observations outside
/// the range still count — below lands in the first bucket, above only
/// in `+Inf` — so the cumulative invariant holds for any value.
const RENDERED_EDGES: [usize; 13] = [10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34];

fn render_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", crate::json_escape(v));
    }
    out.push('}');
}

/// Appends a `# TYPE` family declaration.
pub fn write_type(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends one sample line.
pub fn write_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: impl Display) {
    out.push_str(name);
    render_labels(out, labels);
    let _ = writeln!(out, " {value}");
}

/// Appends the cumulative bucket / sum / count series of one histogram
/// series (the `# TYPE <name> histogram` line is the caller's, written
/// once per family). `labels` are the series labels without `le`.
pub fn write_histogram(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    snap: &HistogramSnapshot,
) {
    let bucket = format!("{name}_bucket");
    for edge in RENDERED_EDGES {
        let le = format!("{}", (1u64 << edge) as f64 * 1e-9);
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", le.as_str()));
        write_sample(out, &bucket, &with_le, snap.cumulative(edge));
    }
    let mut inf: Vec<(&str, &str)> = labels.to_vec();
    inf.push(("le", "+Inf"));
    write_sample(out, &bucket, &inf, snap.count);
    write_sample(
        out,
        &format!("{name}_sum"),
        labels,
        format!("{:.9}", snap.sum as f64 * 1e-9),
    );
    write_sample(out, &format!("{name}_count"), labels, snap.count);
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The series name (for histograms, the `_bucket`/`_sum`/`_count`
    /// member name).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A canonical `name{sorted labels}` series key for duplicate checks.
    fn series_key(&self) -> String {
        let mut labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        labels.sort();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// A parsed, validated exposition.
#[derive(Debug, Default)]
pub struct Exposition {
    /// Declared families: name → kind (`counter`, `gauge`, `histogram`).
    pub families: BTreeMap<String, String>,
    /// Every sample line, in source order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// Names of the declared histogram families.
    pub fn histogram_families(&self) -> Vec<&str> {
        self.families
            .iter()
            .filter(|(_, kind)| kind.as_str() == "histogram")
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// The value of the unlabelled series `name`, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let err = |what: &str| format!("line {lineno}: {what}: {line:?}");
    let (series, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| err("sample line has no value"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| err("sample value is not a number"))?;
    let (name, labels) = match series.split_once('{') {
        None => (series.to_owned(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| err("unterminated label set"))?;
            let mut labels = Vec::new();
            if !body.is_empty() {
                for pair in body.split("\",") {
                    let pair = pair.strip_suffix('"').unwrap_or(pair);
                    let (k, v) = pair
                        .split_once("=\"")
                        .ok_or_else(|| err("malformed label pair"))?;
                    if !valid_metric_name(k) {
                        return Err(err("invalid label name"));
                    }
                    labels.push((k.to_owned(), v.to_owned()));
                }
            }
            (name.to_owned(), labels)
        }
    };
    if !valid_metric_name(&name) {
        return Err(err("invalid metric name"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Family a sample belongs to, given the declared family set: exact name
/// for counters/gauges, the `_bucket`/`_sum`/`_count` stem for
/// histograms.
fn family_of<'a>(name: &'a str, families: &BTreeMap<String, String>) -> Option<(&'a str, &'a str)> {
    if families.contains_key(name) {
        return Some((name, "self"));
    }
    for (suffix, member) in [("_bucket", "bucket"), ("_sum", "sum"), ("_count", "count")] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if families.get(stem).map(String::as_str) == Some("histogram") {
                return Some((stem, member));
            }
        }
    }
    None
}

/// Parses and validates an exposition document. See the module docs for
/// what is rejected.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut expo = Exposition::default();
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut parts = decl.split_whitespace();
            let (name, kind) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(k), None) => (n, k),
                _ => return Err(format!("line {lineno}: malformed # TYPE line: {line:?}")),
            };
            if !valid_metric_name(name) {
                return Err(format!("line {lineno}: invalid family name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown family kind {kind:?}"));
            }
            if expo
                .families
                .insert(name.to_owned(), kind.to_owned())
                .is_some()
            {
                return Err(format!("line {lineno}: family {name:?} declared twice"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments (e.g. # HELP) are legal and ignored
        }
        let sample = parse_sample(line, lineno)?;
        if family_of(&sample.name, &expo.families).is_none() {
            return Err(format!(
                "line {lineno}: sample {:?} has no preceding # TYPE family",
                sample.name
            ));
        }
        if !seen_series.insert(sample.series_key()) {
            return Err(format!(
                "line {lineno}: duplicate series {}",
                sample.series_key()
            ));
        }
        expo.samples.push(sample);
    }
    validate_histograms(&expo)?;
    Ok(expo)
}

/// Cross-sample histogram checks: cumulative non-decreasing buckets in
/// `le` order, a `+Inf` terminal, and `+Inf == count`, per label set.
fn validate_histograms(expo: &Exposition) -> Result<(), String> {
    for family in expo.histogram_families() {
        // Group the family's bucket samples by their non-`le` labels.
        let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        let mut counts: BTreeMap<String, f64> = BTreeMap::new();
        for sample in &expo.samples {
            let non_le: Vec<String> = sample
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let group = non_le.join(",");
            if sample.name == format!("{family}_bucket") {
                let le = sample
                    .label("le")
                    .ok_or_else(|| format!("{family}: bucket sample without le label"))?;
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>()
                        .map_err(|_| format!("{family}: unparseable le {le:?}"))?
                };
                groups.entry(group).or_default().push((le, sample.value));
            } else if sample.name == format!("{family}_count") {
                counts.insert(group, sample.value);
            }
        }
        if groups.is_empty() {
            return Err(format!("{family}: histogram family has no bucket samples"));
        }
        for (group, mut buckets) in groups {
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut prev = -1.0f64;
            for &(le, v) in &buckets {
                if v < prev {
                    return Err(format!(
                        "{family}{{{group}}}: bucket le={le} count {v} below predecessor {prev}"
                    ));
                }
                prev = v;
            }
            let Some(&(last_le, inf_count)) = buckets.last() else {
                return Err(format!("{family}{{{group}}}: empty bucket set"));
            };
            if last_le != f64::INFINITY {
                return Err(format!("{family}{{{group}}}: missing le=\"+Inf\" bucket"));
            }
            match counts.get(&group) {
                Some(&count) if count == inf_count => {}
                Some(&count) => {
                    return Err(format!(
                        "{family}{{{group}}}: +Inf bucket {inf_count} != count {count}"
                    ))
                }
                None => return Err(format!("{family}{{{group}}}: missing _count sample")),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    fn rendered() -> String {
        let h = Histogram::new();
        for v in [800u64, 90_000, 90_000, 40_000_000] {
            h.record(v);
        }
        let mut out = String::new();
        write_type(&mut out, "t_total", "counter");
        write_sample(&mut out, "t_total", &[], 3u64);
        write_type(&mut out, "t_depth", "gauge");
        write_sample(&mut out, "t_depth", &[("pool", "a")], 2u64);
        write_type(&mut out, "t_seconds", "histogram");
        write_histogram(&mut out, "t_seconds", &[("route", "/query")], &h.snapshot());
        write_histogram(&mut out, "t_seconds", &[("route", "/batch")], &h.snapshot());
        out
    }

    #[test]
    fn rendered_output_parses_and_validates() {
        let text = rendered();
        let expo = parse(&text).expect("the renderer speaks the grammar");
        assert_eq!(expo.families.len(), 3);
        assert_eq!(expo.histogram_families(), vec!["t_seconds"]);
        assert_eq!(expo.value("t_total"), Some(3.0));
        // Two label sets × (13 edges + Inf + sum + count) histogram lines.
        let hist_lines = expo
            .samples
            .iter()
            .filter(|s| s.name.starts_with("t_seconds"))
            .count();
        assert_eq!(hist_lines, 2 * (RENDERED_EDGES.len() + 3));
    }

    #[test]
    fn buckets_are_cumulative_and_inf_terminated() {
        let text = rendered();
        let expo = parse(&text).unwrap();
        let buckets: Vec<f64> = expo
            .samples
            .iter()
            .filter(|s| s.name == "t_seconds_bucket" && s.label("route") == Some("/query"))
            .map(|s| s.value)
            .collect();
        assert_eq!(buckets.len(), RENDERED_EDGES.len() + 1);
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
        assert_eq!(*buckets.last().unwrap(), 4.0, "+Inf bucket == count");
        // 800 ns is below the first rendered edge (1 µs): already counted.
        assert_eq!(buckets[0], 1.0);
    }

    #[test]
    fn hostile_documents_are_rejected() {
        for (doc, why) in [
            ("x_total 1", "undeclared family"),
            ("# TYPE x_total counter\nx_total 1\nx_total 2", "duplicate series"),
            (
                "# TYPE x_total counter\n# TYPE x_total counter\nx_total 1",
                "duplicate family",
            ),
            ("# TYPE x_total widget\nx_total 1", "unknown kind"),
            ("# TYPE x_total counter\nx_total nope", "bad value"),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1",
                "missing count",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_count 1\nh_sum 0.1",
                "non-cumulative buckets",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"0.5\"} 1\nh_count 1\nh_sum 0.1",
                "missing +Inf",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 2\nh_sum 0.1",
                "count mismatch",
            ),
        ] {
            assert!(parse(doc).is_err(), "{why} must be rejected: {doc:?}");
        }
    }

    #[test]
    fn labels_and_comments_parse() {
        let doc = "# HELP x_total something\n# TYPE x_total counter\nx_total{a=\"1\",b=\"two words\"} 7\n";
        let expo = parse(doc).unwrap();
        assert_eq!(expo.samples[0].label("b"), Some("two words"));
        assert_eq!(expo.samples[0].value, 7.0);
    }
}
