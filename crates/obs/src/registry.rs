//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration (name → handle) takes a mutex, but it happens once per
//! call site — hot paths hold `Arc` handles (usually cached in a
//! `OnceLock`, as [`crate::span!`] does) and never touch the map again.
//! Reading snapshots walks the map observationally.
//!
//! The process-wide [`global`] registry is what library crates instrument
//! against. It starts **disabled**: a guarded site costs one relaxed load
//! until [`set_global_enabled`] turns recording on. Per-component
//! registries (e.g. one per `rlc-serve` server, so concurrent servers in
//! one test process don't share series) are just `Registry::new()`.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::lock_recover;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Observational read.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Observational read.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named-metric registry. See the module docs for the usage model.
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty, **enabled** registry (explicit-handle registries are
    /// always live; only the [`global`] one starts disabled).
    pub fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(true),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether guarded instrumentation should record.
    pub fn enabled(&self) -> bool {
        // rlc-analyze: allow(atomic-pairing) — observational on/off flag; recording a beat late/early is fine
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns guarded instrumentation on or off.
    pub fn set_enabled(&self, on: bool) {
        // rlc-analyze: allow(atomic-pairing) — observational on/off flag
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Gets or registers the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = lock_recover(&self.inner);
        Arc::clone(
            inner
                .counters
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Gets or registers the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = lock_recover(&self.inner);
        Arc::clone(
            inner
                .gauges
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// Gets or registers the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = lock_recover(&self.inner);
        Arc::clone(
            inner
                .histograms
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Name-sorted observational counter values.
    pub fn counter_snapshots(&self) -> Vec<(String, u64)> {
        let inner = lock_recover(&self.inner);
        inner
            .counters
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// Name-sorted observational gauge values.
    pub fn gauge_snapshots(&self) -> Vec<(String, i64)> {
        let inner = lock_recover(&self.inner);
        inner
            .gauges
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect()
    }

    /// Name-sorted merged histogram snapshots.
    pub fn histogram_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        let inner = lock_recover(&self.inner);
        inner
            .histograms
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry library crates instrument against. Starts
/// disabled; see the module docs.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(|| {
        let registry = Registry::new();
        registry.set_enabled(false);
        registry
    })
}

/// Fast path for guarded sites: is the global registry recording?
pub fn global_enabled() -> bool {
    global().enabled()
}

/// Turns the global registry's recording on or off (process-wide).
pub fn set_global_enabled(on: bool) {
    global().set_enabled(on);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.add(2);
        b.inc();
        assert_eq!(r.counter("x_total").get(), 3);
        assert_eq!(r.counter_snapshots(), vec![("x_total".to_owned(), 3)]);

        let g = r.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(r.gauge_snapshots(), vec![("depth".to_owned(), 3)]);

        r.histogram("lat").record(9);
        let snaps = r.histogram_snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].0, "lat");
        assert_eq!(snaps[0].1.count, 1);
    }

    #[test]
    fn snapshots_come_back_name_sorted() {
        let r = Registry::new();
        r.counter("zz").inc();
        r.counter("aa").inc();
        let names: Vec<String> = r.counter_snapshots().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["aa", "zz"]);
    }
}
