//! Property tests of the histogram, following the repo's
//! deterministic-randomness discipline: every random stream is a seeded
//! xorshift, so a failure reproduces bit-for-bit.

use rlc_obs::{Histogram, HistogramSnapshot, HIST_BUCKETS};

/// Seeded xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value whose magnitude is itself random (uniform bit length), so
    /// every bucket regime gets exercised — uniform u64s would pile into
    /// the top buckets.
    fn latency(&mut self) -> u64 {
        let bits = self.next() % 40; // 0 ns ..= ~550 s in nanoseconds
        if bits == 0 {
            0
        } else {
            let span = 1u64 << (bits - 1);
            span + self.next() % span
        }
    }
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn bucket_assignment_is_monotone_and_cumulative_counts_never_decrease() {
    let mut rng = Rng::new(0xA11CE);
    for _ in 0..200 {
        let (a, b) = (rng.latency(), rng.latency());
        let (lo, hi) = (a.min(b), a.max(b));
        let (snap_lo, snap_hi) = (record_all(&[lo]), record_all(&[hi]));
        let bucket = |s: &HistogramSnapshot| s.buckets.iter().position(|&c| c > 0).unwrap();
        assert!(
            bucket(&snap_lo) <= bucket(&snap_hi),
            "bucket({lo}) > bucket({hi})"
        );
    }
    // Cumulative counts are non-decreasing in the bucket index.
    let mut rng = Rng::new(0xBEE);
    let values: Vec<u64> = (0..5_000).map(|_| rng.latency()).collect();
    let snap = record_all(&values);
    let mut prev = 0u64;
    for b in 0..HIST_BUCKETS {
        let c = snap.cumulative(b);
        assert!(c >= prev, "cumulative dipped at bucket {b}");
        prev = c;
    }
    assert_eq!(prev, values.len() as u64, "+Inf bucket covers everything");
}

#[test]
fn merge_is_associative_and_commutative() {
    let mut rng = Rng::new(7);
    for round in 0..20 {
        let streams: Vec<Vec<u64>> = (0..3)
            .map(|_| (0..200).map(|_| rng.latency()).collect())
            .collect();
        let [a, b, c] = [
            record_all(&streams[0]),
            record_all(&streams[1]),
            record_all(&streams[2]),
        ];
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut right_tail = b.clone();
        right_tail.merge(&c);
        let mut right = a.clone();
        right.merge(&right_tail);
        assert_eq!(left, right, "associativity broke in round {round}");
        // b ⊕ a == a ⊕ b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "commutativity broke in round {round}");
        // Merging equals recording the concatenated stream.
        let concat: Vec<u64> = streams.concat();
        assert_eq!(
            left,
            record_all(&concat),
            "merge != concat in round {round}"
        );
    }
}

#[test]
fn quantile_estimates_bound_the_sorted_vector_oracle_within_2x() {
    for seed in [3u64, 99, 0xD00D, 0xFEED_F00D] {
        let mut rng = Rng::new(seed);
        let mut values: Vec<u64> = (0..2_000).map(|_| rng.latency()).collect();
        let snap = record_all(&values);
        values.sort_unstable();
        for q in [0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let oracle = values[rank - 1];
            let estimate = snap.quantile(q);
            assert!(
                estimate >= oracle,
                "seed {seed} q {q}: estimate {estimate} < oracle {oracle}"
            );
            assert!(
                estimate <= oracle.saturating_mul(2).max(1),
                "seed {seed} q {q}: estimate {estimate} > 2x oracle {oracle}"
            );
        }
        assert_eq!(snap.max, *values.last().unwrap(), "max is tracked exactly");
        assert_eq!(
            snap.quantile(1.0),
            snap.max,
            "the top quantile is the exact max"
        );
    }
}

/// Concurrent recorders across threads: per-thread shards must merge to
/// exactly the union of every thread's deterministic stream. Runs under
/// the pinned-thread CI step as well as the default one.
#[test]
fn concurrent_recorders_merge_losslessly() {
    let h = Histogram::new();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 4_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = &h;
            scope.spawn(move || {
                let mut rng = Rng::new(1000 + t);
                for _ in 0..PER_THREAD {
                    h.record(rng.latency());
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);

    // The same streams recorded sequentially give the identical snapshot:
    // sharding is an implementation detail, not an observable one.
    let mut expected: Vec<u64> = Vec::new();
    for t in 0..THREADS {
        let mut rng = Rng::new(1000 + t);
        expected.extend((0..PER_THREAD).map(|_| rng.latency()));
    }
    assert_eq!(snap, record_all(&expected));
}
