//! The dataset catalog of Table III and its synthetic stand-ins.
//!
//! The paper evaluates on thirteen real-world graphs from SNAP and KONECT.
//! Those graphs cannot be redistributed with this reproduction and several
//! are too large for a laptop, so each catalog entry records the paper's
//! statistics (|V|, |E|, |L|, loop count, triangle count) and knows how to
//! generate a *structure-matched stand-in*: a synthetic graph with the same
//! label-set size, the same average degree, the paper's Zipfian(2) label
//! skew, a matching self-loop density, and a degree distribution chosen to
//! match the original's character (preferential attachment for social/web
//! graphs, uniform for the near-uniform ones). The stand-in is generated at
//! a configurable scale factor so the whole Table IV / Fig. 3 pipeline runs
//! in minutes instead of days.

use rand::prelude::*;
use rand::rngs::StdRng;
use rlc_graph::generate::{barabasi_albert, erdos_renyi, zipfian_labels, SyntheticConfig};
use rlc_graph::{GraphBuilder, LabeledGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Which synthetic generator approximates the original graph's topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeneratorKind {
    /// Barabási–Albert: skewed degree distribution (social networks, web
    /// graphs, hyperlink graphs).
    PreferentialAttachment,
    /// Erdős–Rényi: near-uniform degree distribution.
    Uniform,
}

/// One row of Table III: the paper's statistics for a real-world graph plus
/// the recipe for its synthetic stand-in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Short code used in the paper's tables (e.g. "AD", "WN").
    pub code: &'static str,
    /// Full dataset name.
    pub name: &'static str,
    /// Paper's vertex count.
    pub vertices: usize,
    /// Paper's edge count.
    pub edges: usize,
    /// Paper's label count.
    pub labels: usize,
    /// Whether the paper assigned synthetic (Zipfian) labels to this graph.
    pub synthetic_labels: bool,
    /// Paper's self-loop count.
    pub loops: usize,
    /// Paper's triangle count.
    pub triangles: usize,
    /// Topology of the stand-in generator.
    pub generator: GeneratorKind,
    /// Paper's indexing time in seconds for the RLC index with k = 2
    /// (Table IV), kept for the paper-vs-measured comparison in
    /// EXPERIMENTS.md.
    pub paper_indexing_seconds: f64,
    /// Paper's index size in megabytes (Table IV).
    pub paper_index_megabytes: f64,
}

impl DatasetSpec {
    /// Average degree `|E| / |V|` of the original graph.
    pub fn avg_degree(&self) -> f64 {
        self.edges as f64 / self.vertices as f64
    }

    /// Self-loop density `loops / |V|` of the original graph.
    pub fn loop_density(&self) -> f64 {
        self.loops as f64 / self.vertices as f64
    }

    /// Generates the synthetic stand-in at `scale` (fraction of the original
    /// vertex count, e.g. `1.0 / 64.0`).
    ///
    /// The stand-in preserves |L|, the average degree, the Zipfian label skew
    /// and the self-loop density; the degree distribution follows
    /// [`GeneratorKind`].
    pub fn generate(&self, scale: f64, seed: u64) -> LabeledGraph {
        assert!(scale > 0.0, "scale must be positive");
        let vertices = ((self.vertices as f64 * scale).round() as usize).max(64);
        let config = SyntheticConfig::new(vertices, self.avg_degree(), self.labels, seed);
        let base = match self.generator {
            GeneratorKind::PreferentialAttachment => barabasi_albert(&config),
            GeneratorKind::Uniform => erdos_renyi(&config),
        };
        self.inject_self_loops(base, seed ^ 0x5EED)
    }

    /// Adds self loops to match the original's loop density (many Table III
    /// graphs have none; Advogato and StackOverflow have a lot, and loops are
    /// the worst case for recursive constraints, so preserving their density
    /// matters for indexing-cost fidelity).
    fn inject_self_loops(&self, graph: LabeledGraph, seed: u64) -> LabeledGraph {
        let density = self.loop_density();
        if density <= 0.0 {
            return graph;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let loop_count = ((graph.vertex_count() as f64) * density).round() as usize;
        let mut builder = GraphBuilder::with_capacity(graph.vertex_count(), graph.label_count());
        for e in graph.edges() {
            builder.add_edge(e.source, e.label, e.target);
        }
        let labels = zipfian_labels(loop_count, graph.label_count(), 2.0, &mut rng);
        for label in labels {
            let v = rng.gen_range(0..graph.vertex_count()) as VertexId;
            builder.add_edge(v, label, v);
        }
        builder.build()
    }
}

/// The thirteen datasets of Table III, in the paper's order (sorted by |E|).
pub fn table3_catalog() -> Vec<DatasetSpec> {
    use GeneratorKind::*;
    vec![
        DatasetSpec {
            code: "AD",
            name: "Advogato",
            vertices: 6_000,
            edges: 51_000,
            labels: 3,
            synthetic_labels: false,
            loops: 4_000,
            triangles: 98_000,
            generator: PreferentialAttachment,
            paper_indexing_seconds: 0.7,
            paper_index_megabytes: 1.9,
        },
        DatasetSpec {
            code: "EP",
            name: "Soc-Epinions",
            vertices: 75_000,
            edges: 508_000,
            labels: 8,
            synthetic_labels: true,
            loops: 0,
            triangles: 1_600_000,
            generator: PreferentialAttachment,
            paper_indexing_seconds: 22.6,
            paper_index_megabytes: 29.3,
        },
        DatasetSpec {
            code: "TW",
            name: "Twitter-ICWSM",
            vertices: 465_000,
            edges: 834_000,
            labels: 8,
            synthetic_labels: true,
            loops: 0,
            triangles: 38_000,
            generator: PreferentialAttachment,
            paper_indexing_seconds: 8.1,
            paper_index_megabytes: 93.5,
        },
        DatasetSpec {
            code: "WN",
            name: "Web-NotreDame",
            vertices: 325_000,
            edges: 1_400_000,
            labels: 8,
            synthetic_labels: true,
            loops: 27_000,
            triangles: 8_900_000,
            generator: PreferentialAttachment,
            paper_indexing_seconds: 33.1,
            paper_index_megabytes: 122.6,
        },
        DatasetSpec {
            code: "WS",
            name: "Web-Stanford",
            vertices: 281_000,
            edges: 2_000_000,
            labels: 8,
            synthetic_labels: true,
            loops: 0,
            triangles: 11_000_000,
            generator: PreferentialAttachment,
            paper_indexing_seconds: 53.5,
            paper_index_megabytes: 173.9,
        },
        DatasetSpec {
            code: "WG",
            name: "Web-Google",
            vertices: 875_000,
            edges: 5_000_000,
            labels: 8,
            synthetic_labels: true,
            loops: 0,
            triangles: 13_000_000,
            generator: PreferentialAttachment,
            paper_indexing_seconds: 101.3,
            paper_index_megabytes: 403.6,
        },
        DatasetSpec {
            code: "WT",
            name: "Wiki-Talk",
            vertices: 2_300_000,
            edges: 5_000_000,
            labels: 8,
            synthetic_labels: true,
            loops: 0,
            triangles: 9_000_000,
            generator: PreferentialAttachment,
            paper_indexing_seconds: 812.9,
            paper_index_megabytes: 607.1,
        },
        DatasetSpec {
            code: "WB",
            name: "Web-BerkStan",
            vertices: 685_000,
            edges: 7_000_000,
            labels: 8,
            synthetic_labels: true,
            loops: 0,
            triangles: 64_000_000,
            generator: PreferentialAttachment,
            paper_indexing_seconds: 167.1,
            paper_index_megabytes: 474.2,
        },
        DatasetSpec {
            code: "WH",
            name: "Wiki-hyperlink",
            vertices: 1_700_000,
            edges: 28_500_000,
            labels: 8,
            synthetic_labels: true,
            loops: 4_000,
            triangles: 52_000_000,
            generator: PreferentialAttachment,
            paper_indexing_seconds: 3_707.2,
            paper_index_megabytes: 1_319.1,
        },
        DatasetSpec {
            code: "PR",
            name: "Pokec",
            vertices: 1_600_000,
            edges: 30_600_000,
            labels: 8,
            synthetic_labels: true,
            loops: 0,
            triangles: 32_000_000,
            generator: Uniform,
            paper_indexing_seconds: 3_104.1,
            paper_index_megabytes: 1_212.6,
        },
        DatasetSpec {
            code: "SO",
            name: "StackOverflow",
            vertices: 2_600_000,
            edges: 63_400_000,
            labels: 3,
            synthetic_labels: false,
            loops: 15_000_000,
            triangles: 114_000_000,
            generator: PreferentialAttachment,
            paper_indexing_seconds: 57_072.5,
            paper_index_megabytes: 844.2,
        },
        DatasetSpec {
            code: "LJ",
            name: "LiveJournal",
            vertices: 4_800_000,
            edges: 68_900_000,
            labels: 50,
            synthetic_labels: true,
            loops: 0,
            triangles: 285_000_000,
            generator: PreferentialAttachment,
            paper_indexing_seconds: 18_240.9,
            paper_index_megabytes: 6_248.1,
        },
        DatasetSpec {
            code: "WF",
            name: "Wiki-link-fr",
            vertices: 3_300_000,
            edges: 123_700_000,
            labels: 25,
            synthetic_labels: true,
            loops: 19_000,
            triangles: 30_000_000_000,
            generator: PreferentialAttachment,
            paper_indexing_seconds: 51_338.7,
            paper_index_megabytes: 6_467.9,
        },
    ]
}

/// Looks a dataset up by its two-letter code.
pub fn dataset_by_code(code: &str) -> Option<DatasetSpec> {
    table3_catalog().into_iter().find(|d| d.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_graph::stats::{self_loop_count, GraphStats};

    #[test]
    fn catalog_matches_paper_shape() {
        let catalog = table3_catalog();
        assert_eq!(catalog.len(), 13);
        // Sorted by |E| as in the paper.
        for pair in catalog.windows(2) {
            assert!(pair[0].edges <= pair[1].edges);
        }
        assert_eq!(catalog[0].code, "AD");
        assert_eq!(catalog.last().unwrap().code, "WF");
        // Spot-check a few rows against Table III.
        let wn = dataset_by_code("WN").unwrap();
        assert_eq!(wn.labels, 8);
        assert_eq!(wn.loops, 27_000);
        let lj = dataset_by_code("LJ").unwrap();
        assert_eq!(lj.labels, 50);
    }

    #[test]
    fn stand_in_preserves_label_count_and_degree() {
        let spec = dataset_by_code("EP").unwrap();
        let g = spec.generate(1.0 / 128.0, 42);
        assert_eq!(g.label_count(), spec.labels);
        let got_degree = g.average_degree();
        let want_degree = spec.avg_degree();
        assert!(
            (got_degree - want_degree).abs() / want_degree < 0.25,
            "degree {got_degree} too far from {want_degree}"
        );
    }

    #[test]
    fn stand_in_preserves_loop_density() {
        let spec = dataset_by_code("AD").unwrap();
        let g = spec.generate(0.25, 7);
        let density = self_loop_count(&g) as f64 / g.vertex_count() as f64;
        let want = spec.loop_density();
        assert!(
            (density - want).abs() < 0.15,
            "loop density {density} too far from {want}"
        );
    }

    #[test]
    fn loop_free_datasets_stay_loop_free() {
        let spec = dataset_by_code("EP").unwrap();
        let g = spec.generate(1.0 / 256.0, 7);
        assert_eq!(self_loop_count(&g), 0);
    }

    #[test]
    fn preferential_attachment_stand_in_is_skewed() {
        let spec = dataset_by_code("WG").unwrap();
        let g = spec.generate(1.0 / 512.0, 3);
        let stats = GraphStats::compute(&g);
        assert!(stats.max_out_degree + stats.max_in_degree > 4 * stats.avg_degree as usize);
    }

    #[test]
    fn generation_is_reproducible() {
        let spec = dataset_by_code("TW").unwrap();
        let a = spec.generate(1.0 / 256.0, 11);
        let b = spec.generate(1.0 / 256.0, 11);
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn unknown_code_returns_none() {
        assert!(dataset_by_code("XX").is_none());
    }

    #[test]
    fn minimum_size_floor_applies() {
        let spec = dataset_by_code("AD").unwrap();
        let g = spec.generate(1e-9, 1);
        assert!(g.vertex_count() >= 64);
    }
}
