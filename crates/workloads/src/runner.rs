//! Small utilities shared by the experiment binaries: wall-clock timing,
//! human-readable unit formatting and plain-text table rendering in the style
//! of the paper's tables.
//!
//! When the bench harness runs with `--json`, it turns on process-wide table
//! capture ([`capture_tables`]): every [`Table::render`] additionally files a
//! structured [`TableSnapshot`] into a buffer the harness drains afterwards
//! ([`drain_tables`]) to emit the machine-readable `BENCH_<name>.json`
//! sidecar — the text report stays byte-identical either way.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Runs `f`, returning its result together with the elapsed wall-clock time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Formats a duration with an adaptive unit (µs, ms, s) as the paper's plots
/// do.
pub fn format_duration(d: Duration) -> String {
    let micros = d.as_secs_f64() * 1e6;
    if micros < 1_000.0 {
        format!("{micros:.1} µs")
    } else if micros < 1_000_000.0 {
        format!("{:.2} ms", micros / 1_000.0)
    } else {
        format!("{:.2} s", d.as_secs_f64())
    }
}

/// Formats a byte count with an adaptive unit (B, KB, MB, GB).
pub fn format_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b < KB {
        format!("{bytes} B")
    } else if b < KB * KB {
        format!("{:.1} KB", b / KB)
    } else if b < KB * KB * KB {
        format!("{:.1} MB", b / (KB * KB))
    } else {
        format!("{:.2} GB", b / (KB * KB * KB))
    }
}

/// A captured table — title, header, and rows — for machine-readable
/// export alongside the plain-text report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSnapshot {
    /// The table's title line.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows, each as wide as the header.
    pub rows: Vec<Vec<String>>,
}

/// Capture buffer: `None` when capture is off (the default).
static CAPTURE: Mutex<Option<Vec<TableSnapshot>>> = Mutex::new(None);

fn capture_lock() -> std::sync::MutexGuard<'static, Option<Vec<TableSnapshot>>> {
    CAPTURE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Turns on process-wide table capture, clearing anything captured before.
/// Every subsequent [`Table::render`] files a [`TableSnapshot`] until
/// [`drain_tables`] turns capture back off.
pub fn capture_tables() {
    *capture_lock() = Some(Vec::new());
}

/// Turns capture off and returns everything captured since
/// [`capture_tables`] (empty if capture was never on).
pub fn drain_tables() -> Vec<TableSnapshot> {
    capture_lock().take().unwrap_or_default()
}

/// A simple fixed-column text table, printed with aligned columns.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the number of cells must match the header.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned plain text (and files a snapshot when
    /// process-wide capture is on — see [`capture_tables`]).
    pub fn render(&self) -> String {
        if let Some(captured) = capture_lock().as_mut() {
            captured.push(TableSnapshot {
                title: self.title.clone(),
                header: self.header.clone(),
                rows: self.rows.clone(),
            });
        }
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let render_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..columns {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1))
        ));
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to standard output.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_execution() {
        // No wall-clock lower bounds tied to sleeps: those are flaky under
        // scheduler noise. Check that the closure's value is returned, that
        // the reported duration is contained in an enclosing measurement
        // (monotonicity), and that measurable work yields a non-zero
        // duration.
        let outer_start = Instant::now();
        let (value, elapsed) = time(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        let outer_elapsed = outer_start.elapsed();
        assert_eq!(value, (0..100_000u64).sum::<u64>());
        assert!(
            elapsed <= outer_elapsed,
            "inner {elapsed:?} > outer {outer_elapsed:?}"
        );
        assert!(elapsed > Duration::ZERO, "real work must take time");
    }

    #[test]
    fn duration_formatting_uses_adaptive_units() {
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).contains(" s"));
    }

    #[test]
    fn byte_formatting_uses_adaptive_units() {
        assert_eq!(format_bytes(100), "100 B");
        assert!(format_bytes(4 * 1024).contains("KB"));
        assert!(format_bytes(3 * 1024 * 1024).contains("MB"));
        assert!(format_bytes(5 * 1024 * 1024 * 1024).contains("GB"));
    }

    #[test]
    fn table_renders_aligned_rows() {
        let mut table = Table::new("Example", &["graph", "time"]);
        table.add_row(vec!["AD".into(), "0.7 s".into()]);
        table.add_row(vec!["Web-NotreDame".into(), "33.1 s".into()]);
        let text = table.render();
        assert!(text.contains("== Example =="));
        assert!(text.contains("graph"));
        assert!(text.contains("Web-NotreDame"));
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    fn capture_snapshots_rendered_tables() {
        // Other tests render tables concurrently; filter by a title only
        // this test uses so their renders can't confuse the assertion.
        capture_tables();
        let mut table = Table::new("capture-probe-7391", &["col"]);
        table.add_row(vec!["cell".into()]);
        let _ = table.render();
        let snapshots = drain_tables();
        let mine: Vec<_> = snapshots
            .iter()
            .filter(|s| s.title == "capture-probe-7391")
            .collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].header, vec!["col".to_owned()]);
        assert_eq!(mine[0].rows, vec![vec!["cell".to_owned()]]);
        // Capture is off again: renders no longer accumulate.
        let _ = table.render();
        assert!(drain_tables().is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut table = Table::new("Example", &["a", "b"]);
        table.add_row(vec!["only one".into()]);
    }
}
