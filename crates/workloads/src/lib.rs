//! # rlc-workloads
//!
//! Workload and dataset generation for the RLC index experiments:
//!
//! * [`querygen`] — generation of the 1000-true / 1000-false query sets the
//!   paper evaluates on every graph (§VI-c), validated with bidirectional
//!   search;
//! * [`datasets`] — the catalog of the thirteen real-world graphs of
//!   Table III together with structure-matched synthetic stand-ins (see
//!   DESIGN.md for the substitution rationale), plus the ER/BA configurations
//!   of the synthetic experiments;
//! * [`runner`] — small utilities shared by the experiment binaries: timing,
//!   unit formatting and plain-text table rendering.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datasets;
pub mod querygen;
pub mod runner;

pub use datasets::{table3_catalog, DatasetSpec, GeneratorKind};
pub use querygen::{generate_query_set, QueryGenConfig, QuerySet};
pub use runner::{
    capture_tables, drain_tables, format_bytes, format_duration, time, Table, TableSnapshot,
};
