//! Synthetic graph generators used by the experimental evaluation (§VI-B).
//!
//! The paper evaluates the RLC index on Erdős–Rényi (ER) and Barabási–Albert
//! (BA) graphs generated with JGraphT, with edge labels drawn from a Zipfian
//! distribution with exponent 2 (the same scheme it applies to real-world
//! graphs that lack labels). This module reproduces those generators:
//!
//! * [`erdos_renyi`] — `G(n, m)`-style directed ER graph with a target
//!   average out-degree (uniform degree distribution);
//! * [`barabasi_albert`] — preferential-attachment graph containing an
//!   initial complete core (skewed degree distribution), directed by emitting
//!   each attachment edge in both orientations' random choice;
//! * [`zipfian_labels`] — label assignment with `P(l_i) ∝ 1 / i^2`.

use crate::builder::GraphBuilder;
use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::Zipf;

/// Configuration of a synthetic graph: number of vertices, average degree
/// (edges per vertex), number of distinct labels, Zipf exponent and seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of vertices `|V|`.
    pub vertices: usize,
    /// Average out-degree `d = |E| / |V|`.
    pub avg_degree: f64,
    /// Number of distinct edge labels `|L|`.
    pub labels: usize,
    /// Zipf exponent for label assignment (the paper uses 2.0).
    pub zipf_exponent: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Convenience constructor matching the paper's defaults (Zipf exponent 2).
    pub fn new(vertices: usize, avg_degree: f64, labels: usize, seed: u64) -> Self {
        SyntheticConfig {
            vertices,
            avg_degree,
            labels,
            zipf_exponent: 2.0,
            seed,
        }
    }

    /// Total number of edges implied by the configuration.
    pub fn edge_count(&self) -> usize {
        (self.vertices as f64 * self.avg_degree).round() as usize
    }
}

/// Generates a directed Erdős–Rényi-style graph with `config.vertices`
/// vertices and `vertices * avg_degree` uniformly random directed edges, then
/// assigns Zipfian labels.
///
/// Self loops are excluded (matching JGraphT's `GnmRandomGraphGenerator`
/// defaults used by the paper); parallel edges may occur with negligible
/// probability and are kept.
pub fn erdos_renyi(config: &SyntheticConfig) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.vertices;
    let m = config.edge_count();
    let mut builder = GraphBuilder::with_capacity(n, config.labels);
    let labels = zipfian_labels(m, config.labels, config.zipf_exponent, &mut rng);
    let mut emitted = 0usize;
    while emitted < m {
        let s = rng.gen_range(0..n) as VertexId;
        let t = rng.gen_range(0..n) as VertexId;
        if s == t && n > 1 {
            continue;
        }
        builder.add_edge(s, labels[emitted], t);
        emitted += 1;
    }
    builder.build()
}

/// Generates a directed Barabási–Albert graph: an initial complete directed
/// core of `m0 = ceil(avg_degree) + 1` vertices, then every new vertex
/// attaches `m = round(avg_degree)` out-edges to existing vertices chosen
/// with probability proportional to their current degree. Labels are Zipfian.
///
/// The resulting degree distribution is heavily skewed and the core is a
/// complete subgraph — the two properties the paper's analysis of BA-graphs
/// relies on (§VI-B).
pub fn barabasi_albert(config: &SyntheticConfig) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.vertices;
    let m_attach = config.avg_degree.round().max(1.0) as usize;
    let m0 = (m_attach + 1).min(n.max(1));
    let mut builder = GraphBuilder::with_capacity(n, config.labels);

    // Repeated-endpoint list implements preferential attachment in O(1) per
    // sample: each edge endpoint is pushed once, so sampling uniformly from
    // the list is degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);
    let mut edge_labels: Vec<Label> = Vec::new();
    let take_label = |rng: &mut StdRng, edge_labels: &mut Vec<Label>| {
        if edge_labels.is_empty() {
            *edge_labels = zipfian_labels(4096, config.labels, config.zipf_exponent, rng);
        }
        // rlc-analyze: allow(panic-free-library) — the branch above refills the buffer with 4096 labels whenever it is empty, so pop() always has one
        edge_labels.pop().expect("label buffer refilled above")
    };

    // Complete directed core (every ordered pair, no self loops).
    for i in 0..m0 {
        for j in 0..m0 {
            if i == j {
                continue;
            }
            let l = take_label(&mut rng, &mut edge_labels);
            builder.add_edge(i as VertexId, l, j as VertexId);
            endpoints.push(i as VertexId);
            endpoints.push(j as VertexId);
        }
    }

    for v in m0..n {
        for _ in 0..m_attach {
            // Resample degree-proportionally until the endpoint differs from
            // the new vertex, so the generator never emits self loops (loop
            // injection, when wanted, is a separate explicit step).
            let mut target = v as VertexId;
            for _ in 0..16 {
                let candidate = if endpoints.is_empty() {
                    rng.gen_range(0..v) as VertexId
                } else {
                    endpoints[rng.gen_range(0..endpoints.len())]
                };
                if candidate != v as VertexId {
                    target = candidate;
                    break;
                }
            }
            if target == v as VertexId {
                target = rng.gen_range(0..v) as VertexId;
            }
            let l = take_label(&mut rng, &mut edge_labels);
            // Orient half of the attachment edges towards the new vertex so
            // that both in- and out-reachability grow, as in a directed BA
            // construction.
            if rng.gen_bool(0.5) {
                builder.add_edge(v as VertexId, l, target);
            } else {
                builder.add_edge(target, l, v as VertexId);
            }
            endpoints.push(v as VertexId);
            endpoints.push(target);
        }
    }
    builder.build()
}

/// Draws `count` labels from a Zipfian distribution over `label_count`
/// labels with the given exponent: label `l_i` (1-based rank `i`) has
/// probability proportional to `1 / i^exponent`.
pub fn zipfian_labels<R: Rng>(
    count: usize,
    label_count: usize,
    exponent: f64,
    rng: &mut R,
) -> Vec<Label> {
    assert!(label_count > 0, "need at least one label");
    if label_count == 1 {
        return vec![Label(0); count];
    }
    // rlc-analyze: allow(panic-free-library) — label_count >= 2 is guaranteed by the assert and early return above; a non-finite exponent is a programming error in the generator config, not an input
    let zipf = Zipf::new(label_count as u64, exponent).expect("valid Zipf parameters");
    (0..count)
        .map(|_| {
            let rank = zipf.sample(rng) as usize; // 1-based rank
            Label::from_index(rank - 1)
        })
        .collect()
}

/// Relabels an existing graph with Zipfian labels, keeping its structure.
///
/// This mirrors the paper's treatment of real-world graphs that come without
/// edge labels (the "Synthetic Labels" column of Table III).
pub fn assign_zipfian_labels(
    graph: &LabeledGraph,
    label_count: usize,
    exponent: f64,
    seed: u64,
) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = zipfian_labels(graph.edge_count(), label_count, exponent, &mut rng);
    let mut builder = GraphBuilder::with_capacity(graph.vertex_count(), label_count);
    for (i, e) in graph.edges().enumerate() {
        builder.add_edge(e.source, labels[i], e.target);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn er_graph_matches_requested_size() {
        let cfg = SyntheticConfig::new(500, 3.0, 8, 42);
        let g = erdos_renyi(&cfg);
        assert_eq!(g.vertex_count(), 500);
        assert_eq!(g.edge_count(), 1500);
        assert_eq!(g.label_count(), 8);
    }

    #[test]
    fn er_graph_is_reproducible_for_same_seed() {
        let cfg = SyntheticConfig::new(200, 2.0, 4, 7);
        let g1 = erdos_renyi(&cfg);
        let g2 = erdos_renyi(&cfg);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn er_graph_differs_across_seeds() {
        let a = erdos_renyi(&SyntheticConfig::new(200, 2.0, 4, 1));
        let b = erdos_renyi(&SyntheticConfig::new(200, 2.0, 4, 2));
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn er_graph_has_no_self_loops() {
        let g = erdos_renyi(&SyntheticConfig::new(300, 4.0, 8, 3));
        assert!(g.edges().all(|e| e.source != e.target));
    }

    #[test]
    fn ba_graph_has_expected_scale_and_skew() {
        let cfg = SyntheticConfig::new(1000, 4.0, 8, 11);
        let g = barabasi_albert(&cfg);
        assert_eq!(g.vertex_count(), 1000);
        // Core edges + (n - m0) * m edges.
        assert!(g.edge_count() >= 1000 * 4 - 100);
        // Degree skew: the maximum total degree should far exceed the average.
        let max_deg = g
            .vertices()
            .map(|v| g.out_degree(v) + g.in_degree(v))
            .max()
            .unwrap();
        let avg_deg = 2.0 * g.edge_count() as f64 / g.vertex_count() as f64;
        assert!(
            max_deg as f64 > 4.0 * avg_deg,
            "BA graph should have a heavy-tailed degree distribution (max {max_deg}, avg {avg_deg})"
        );
    }

    #[test]
    fn ba_graph_contains_complete_core() {
        let cfg = SyntheticConfig::new(50, 3.0, 4, 5);
        let g = barabasi_albert(&cfg);
        let m0 = 4;
        for i in 0..m0 {
            for j in 0..m0 {
                if i != j {
                    let has = g
                        .out_edges(i as VertexId)
                        .iter()
                        .any(|(t, _)| t == j as VertexId);
                    assert!(has, "core edge {i}->{j} missing");
                }
            }
        }
    }

    #[test]
    fn zipfian_labels_are_skewed_towards_low_ranks() {
        let mut rng = StdRng::seed_from_u64(123);
        let labels = zipfian_labels(20_000, 8, 2.0, &mut rng);
        let mut counts = [0usize; 8];
        for l in &labels {
            counts[l.index()] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
        // Rank-1 label should dominate: for exponent 2 over 8 labels its mass
        // is ~0.645.
        assert!(counts[0] as f64 > 0.55 * labels.len() as f64);
        let distinct: HashSet<_> = labels.iter().collect();
        assert!(distinct.len() >= 4, "tail labels should still appear");
    }

    #[test]
    fn zipfian_single_label_degenerates_gracefully() {
        let mut rng = StdRng::seed_from_u64(1);
        let labels = zipfian_labels(10, 1, 2.0, &mut rng);
        assert!(labels.iter().all(|l| *l == Label(0)));
    }

    #[test]
    fn relabeling_preserves_structure() {
        let cfg = SyntheticConfig::new(100, 3.0, 2, 9);
        let g = erdos_renyi(&cfg);
        let relabeled = assign_zipfian_labels(&g, 16, 2.0, 77);
        assert_eq!(relabeled.vertex_count(), g.vertex_count());
        assert_eq!(relabeled.edge_count(), g.edge_count());
        assert_eq!(relabeled.label_count(), 16);
        let structural_a: Vec<_> = g.edges().map(|e| (e.source, e.target)).collect();
        let structural_b: Vec<_> = relabeled.edges().map(|e| (e.source, e.target)).collect();
        assert_eq!(structural_a, structural_b);
    }
}
