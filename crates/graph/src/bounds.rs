//! Division-form bound checks for untrusted length fields.
//!
//! Every binary format in the workspace (`RLG1`, `RLC2`, `ETC1`, `RSH1`)
//! reads declared element counts from untrusted bytes and then sizes
//! loops and allocations with them. The safe pattern — bound the count by
//! the bytes actually present, in division form so multiplication can
//! never overflow — used to be re-implemented inline at every site; this
//! module is the single shared helper, and the `untrusted-length-flow` rule of
//! `rlc-analyze` checks that every decode-path allocation flows through
//! it.

use std::fmt;

/// A declared length that does not fit the bytes actually present.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LengthBoundError {
    /// The declared element count.
    pub count: usize,
    /// The minimum encoded size of one element, in bytes.
    pub per_item: usize,
    /// The bytes remaining in the input when the count was checked.
    pub remaining: usize,
}

impl fmt::Display for LengthBoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.per_item == 0 {
            return write!(
                f,
                "length bound called with a zero per-item size (decoder bug)"
            );
        }
        write!(
            f,
            "declared {} elements of at least {} byte{} each, but only {} bytes remain",
            self.count,
            self.per_item,
            if self.per_item == 1 { "" } else { "s" },
            self.remaining
        )
    }
}

impl std::error::Error for LengthBoundError {}

/// Bounds an untrusted element count by the bytes actually present.
///
/// Returns `count` unchanged when `count * per_item` bytes could still be
/// present in `remaining` input bytes — computed in division form
/// (`count <= remaining / per_item`), which is immune to multiplication
/// overflow on hostile counts — and an error otherwise.
///
/// `per_item` is the *minimum* encoded size of one element in bytes and
/// must be at least 1; a zero `per_item` is itself an error (a zero-size
/// element cannot bound anything, and silently passing would defeat the
/// check).
///
/// The returned count is the input count, not a truncation: callers
/// `let count = checked_len(count, per_item, remaining)?;` so the flow
/// from untrusted field to allocation is visible at the allocation site.
pub fn checked_len(
    count: usize,
    per_item: usize,
    remaining: usize,
) -> Result<usize, LengthBoundError> {
    if per_item > 0 && count <= remaining / per_item {
        Ok(count)
    } else {
        Err(LengthBoundError {
            count,
            per_item,
            remaining,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_counts_that_fit() {
        assert_eq!(checked_len(0, 4, 0), Ok(0));
        assert_eq!(checked_len(3, 4, 12), Ok(3));
        assert_eq!(checked_len(3, 4, 13), Ok(3));
    }

    #[test]
    fn rejects_counts_that_do_not_fit() {
        assert!(checked_len(4, 4, 15).is_err());
        assert!(checked_len(1, 4, 3).is_err());
    }

    #[test]
    fn immune_to_multiplication_overflow() {
        // count * per_item would wrap; the division form must still reject.
        assert!(checked_len(usize::MAX, 8, 64).is_err());
        // The largest count that truly fits is accepted, even though a
        // naive count * per_item comparison sits right at the wrap edge.
        assert!(checked_len(usize::MAX / 2, 2, usize::MAX).is_ok());
        assert!(checked_len(usize::MAX / 2 + 1, 2, usize::MAX).is_err());
    }

    #[test]
    fn zero_per_item_is_a_decoder_bug() {
        let err = checked_len(1, 0, 100).unwrap_err();
        assert!(err.to_string().contains("decoder bug"));
    }

    #[test]
    fn error_message_names_the_numbers() {
        let err = checked_len(1000, 10, 9).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("1000"));
        assert!(text.contains("10"));
        assert!(text.contains("9"));
    }
}
