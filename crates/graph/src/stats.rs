//! Graph statistics reported in Table III of the paper.
//!
//! For every dataset the paper reports `|V|`, `|E|`, `|L|`, the *loop count*
//! (cycles of length 1, i.e. self loops) and the *triangle count* (cycles of
//! length 3). These drive the discussion of indexing cost: dense, highly
//! cyclic graphs (StackOverflow, Wiki-link-fr) are the hardest to index.

use crate::graph::{LabeledGraph, VertexId};
use crate::scc::strongly_connected_components;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Summary statistics of an edge-labeled graph (the columns of Table III plus
/// a few derived quantities used elsewhere in the harness).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of distinct labels.
    pub labels: usize,
    /// Number of self loops (cycles of length 1).
    pub self_loops: usize,
    /// Number of directed triangles (cycles of length 3).
    pub triangles: usize,
    /// Average degree `|E| / |V|`.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of strongly connected components.
    pub scc_count: usize,
    /// Size of the largest strongly connected component.
    pub largest_scc: usize,
}

impl GraphStats {
    /// Computes all statistics for `graph`.
    ///
    /// Triangle counting is `O(sum over edges of min-degree)` via hashed
    /// adjacency intersection, which is fine for the laptop-scale stand-in
    /// graphs used in this reproduction.
    pub fn compute(graph: &LabeledGraph) -> Self {
        let scc = strongly_connected_components(graph);
        GraphStats {
            vertices: graph.vertex_count(),
            edges: graph.edge_count(),
            labels: graph.label_count(),
            self_loops: self_loop_count(graph),
            triangles: directed_triangle_count(graph),
            avg_degree: graph.average_degree(),
            max_out_degree: graph
                .vertices()
                .map(|v| graph.out_degree(v))
                .max()
                .unwrap_or(0),
            max_in_degree: graph
                .vertices()
                .map(|v| graph.in_degree(v))
                .max()
                .unwrap_or(0),
            scc_count: scc.count,
            largest_scc: scc.largest(),
        }
    }
}

/// Counts self loops (edges `v → v`), the paper's "Loop Count".
pub fn self_loop_count(graph: &LabeledGraph) -> usize {
    graph.edges().filter(|e| e.source == e.target).count()
}

/// Counts directed triangles, i.e. directed cycles `u → v → w → u` with three
/// distinct vertices — the paper's "Triangle Count" (cycles of length 3).
///
/// Each cyclic triangle is counted exactly once (not once per rotation), and
/// parallel edges between the same ordered pair do not inflate the count.
pub fn directed_triangle_count(graph: &LabeledGraph) -> usize {
    let n = graph.vertex_count();
    // Deduplicated structural adjacency (ignore labels and parallel edges).
    let mut out: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut seen: HashSet<(VertexId, VertexId)> = HashSet::new();
    for e in graph.edges() {
        if e.source != e.target && seen.insert((e.source, e.target)) {
            out[e.source as usize].push(e.target);
        }
    }
    let out_sets: Vec<HashSet<VertexId>> = out
        .iter()
        .map(|targets| targets.iter().copied().collect())
        .collect();

    let mut count = 0usize;
    for u in 0..n as VertexId {
        for &v in &out[u as usize] {
            if v == u {
                continue;
            }
            for &w in &out[v as usize] {
                if w == u || w == v {
                    continue;
                }
                if out_sets[w as usize].contains(&u) {
                    count += 1;
                }
            }
        }
    }
    // Each directed 3-cycle u→v→w→u is discovered three times (once per
    // starting vertex).
    count / 3
}

/// Per-label edge counts (`histogram[label] = number of edges`).
pub fn label_histogram(graph: &LabeledGraph) -> Vec<usize> {
    let mut histogram = vec![0usize; graph.label_count()];
    for e in graph.edges() {
        histogram[e.label.index()] += 1;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generate::{erdos_renyi, SyntheticConfig};

    #[test]
    fn self_loops_are_counted() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "x", "a");
        b.add_edge_named("a", "y", "a");
        b.add_edge_named("a", "x", "b");
        let g = b.build();
        assert_eq!(self_loop_count(&g), 2);
    }

    #[test]
    fn triangle_counting_single_cycle() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "x", "b");
        b.add_edge_named("b", "x", "c");
        b.add_edge_named("c", "x", "a");
        let g = b.build();
        assert_eq!(directed_triangle_count(&g), 1);
    }

    #[test]
    fn triangle_counting_ignores_non_cyclic_triangles() {
        // a -> b, b -> c, a -> c is a transitive triangle, not a cycle.
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "x", "b");
        b.add_edge_named("b", "x", "c");
        b.add_edge_named("a", "x", "c");
        let g = b.build();
        assert_eq!(directed_triangle_count(&g), 0);
    }

    #[test]
    fn triangle_counting_ignores_parallel_edges_and_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "x", "b");
        b.add_edge_named("a", "y", "b");
        b.add_edge_named("b", "x", "c");
        b.add_edge_named("c", "x", "a");
        b.add_edge_named("a", "x", "a");
        let g = b.build();
        assert_eq!(directed_triangle_count(&g), 1);
    }

    #[test]
    fn two_disjoint_triangles() {
        let mut b = GraphBuilder::new();
        for (x, y, z) in [("a", "b", "c"), ("d", "e", "f")] {
            b.add_edge_named(x, "x", y);
            b.add_edge_named(y, "x", z);
            b.add_edge_named(z, "x", x);
        }
        let g = b.build();
        assert_eq!(directed_triangle_count(&g), 2);
    }

    #[test]
    fn stats_on_synthetic_graph_are_consistent() {
        let g = erdos_renyi(&SyntheticConfig::new(300, 4.0, 8, 17));
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.vertices, 300);
        assert_eq!(stats.edges, 1200);
        assert_eq!(stats.labels, 8);
        assert_eq!(stats.self_loops, 0);
        assert!((stats.avg_degree - 4.0).abs() < 1e-9);
        assert!(stats.max_out_degree >= 4);
        assert!(stats.scc_count >= 1);
        assert!(stats.largest_scc <= stats.vertices);
    }

    #[test]
    fn label_histogram_sums_to_edge_count() {
        let g = erdos_renyi(&SyntheticConfig::new(200, 3.0, 8, 5));
        let hist = label_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), g.edge_count());
        // Zipf exponent 2: the first label dominates.
        assert!(hist[0] > hist[4]);
    }

    #[test]
    fn stats_serialize_round_trip() {
        let g = erdos_renyi(&SyntheticConfig::new(50, 2.0, 4, 1));
        let stats = GraphStats::compute(&g);
        let json = serde_json::to_string(&stats).unwrap();
        let back: GraphStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}
