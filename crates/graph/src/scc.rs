//! Strongly connected components (iterative Tarjan).
//!
//! SCC information is used by the statistics module (cyclicity of a dataset)
//! and by the workload generator (sampling true queries inside large SCCs is
//! far cheaper than rejection sampling over the whole graph).

use crate::graph::{LabeledGraph, VertexId};

/// The strongly connected components of a graph.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// `component[v]` is the id of the SCC containing `v`.
    pub component: Vec<u32>,
    /// Number of SCCs.
    pub count: usize,
}

impl SccDecomposition {
    /// Sizes of all components, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest SCC.
    pub fn largest(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Number of non-trivial SCCs (size ≥ 2).
    pub fn non_trivial(&self) -> usize {
        self.sizes().into_iter().filter(|&s| s >= 2).count()
    }

    /// Whether `u` and `v` are in the same SCC.
    pub fn same_component(&self, u: VertexId, v: VertexId) -> bool {
        self.component[u as usize] == self.component[v as usize]
    }
}

/// Computes the SCCs of `graph` with an iterative Tarjan algorithm.
///
/// The iterative formulation avoids stack overflows on the deep DFS trees
/// that arise in the web graphs the paper uses (millions of vertices).
pub fn strongly_connected_components(graph: &LabeledGraph) -> SccDecomposition {
    const UNVISITED: u32 = u32::MAX;
    let n = graph.vertex_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![0u32; n];
    let mut stack: Vec<VertexId> = Vec::new();
    let mut next_index = 0u32;
    let mut scc_count = 0usize;

    // Explicit DFS frame: (vertex, next out-edge position to examine).
    let mut call_stack: Vec<(VertexId, usize)> = Vec::new();

    for start in graph.vertices() {
        if index[start as usize] != UNVISITED {
            continue;
        }
        call_stack.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&(v, edge_pos)) = call_stack.last() {
            let out = graph.out_edges(v);
            if edge_pos < out.len() {
                // rlc-analyze: allow(panic-free-library) — the while-let above just observed this frame, and nothing pops between the observation and this access
                call_stack.last_mut().expect("frame checked above").1 += 1;
                // rlc-analyze: allow(panic-free-library) — guarded by the edge_pos < out.len() branch condition directly above
                let (w, _) = out.get(edge_pos).expect("edge position in range");
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is the root of an SCC: pop the stack down to v.
                    loop {
                        // rlc-analyze: allow(panic-free-library) — Tarjan invariant: v was pushed onto the stack when first visited and is still on it (on_stack[v]), so the pop loop terminates at v before the stack empties
                        let w = stack.pop().expect("SCC stack contains root");
                        on_stack[w as usize] = false;
                        component[w as usize] = scc_count as u32;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }

    SccDecomposition {
        component,
        count: scc_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn single_cycle_is_one_component() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "x", "b");
        b.add_edge_named("b", "x", "c");
        b.add_edge_named("c", "x", "a");
        let g = b.build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 1);
        assert_eq!(scc.largest(), 3);
        assert_eq!(scc.non_trivial(), 1);
    }

    #[test]
    fn dag_has_singleton_components() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "x", "b");
        b.add_edge_named("b", "x", "c");
        b.add_edge_named("a", "y", "c");
        let g = b.build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 3);
        assert_eq!(scc.largest(), 1);
        assert_eq!(scc.non_trivial(), 0);
        let a = g.vertex_id("a").unwrap();
        let b_id = g.vertex_id("b").unwrap();
        assert!(!scc.same_component(a, b_id));
    }

    #[test]
    fn two_cycles_joined_by_bridge() {
        let mut b = GraphBuilder::new();
        // cycle 1: a <-> b, cycle 2: c <-> d, bridge b -> c
        b.add_edge_named("a", "x", "b");
        b.add_edge_named("b", "x", "a");
        b.add_edge_named("c", "x", "d");
        b.add_edge_named("d", "x", "c");
        b.add_edge_named("b", "x", "c");
        let g = b.build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 2);
        assert_eq!(scc.non_trivial(), 2);
        assert!(scc.same_component(g.vertex_id("a").unwrap(), g.vertex_id("b").unwrap()));
        assert!(!scc.same_component(g.vertex_id("a").unwrap(), g.vertex_id("c").unwrap()));
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "x", "a");
        b.add_edge_named("a", "x", "b");
        let g = b.build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 2);
        assert_eq!(scc.largest(), 1);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // A long path exercises the iterative DFS on a depth that would break
        // a recursive implementation with a small stack.
        let mut b = GraphBuilder::with_capacity(50_000, 1);
        for i in 0..49_999u32 {
            b.add_edge(i, crate::Label(0), i + 1);
        }
        let g = b.build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 50_000);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 0);
        assert_eq!(scc.largest(), 0);
    }
}
