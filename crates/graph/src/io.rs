//! Edge-list persistence for labeled graphs: plain text and a hardened
//! binary format.
//!
//! The text format is one edge per line, `source<TAB>label<TAB>target`, with
//! `#` comment lines. Vertex and label tokens are arbitrary whitespace-free
//! strings; numeric tokens are kept as names too, so a round trip through the
//! format is lossless up to vertex/label renumbering.
//!
//! The binary format (magic `"RLG1"`, see [`to_binary_edge_list`]) is the
//! compact deployment form. Its loader treats the blob as untrusted input:
//! every size field is bounded by the bytes actually present before any
//! allocation, every vertex/label id is range-checked, names must be valid
//! UTF-8 and duplicate-free, and trailing bytes are rejected — the same
//! corruption-blob treatment as `RlcIndex::from_bytes`.

use crate::builder::GraphBuilder;
use crate::graph::{Edge, LabeledGraph};
use crate::label::{Label, LabelInterner};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors produced by edge-list parsing.
#[derive(Debug)]
pub enum EdgeListError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line (missing fields), with its 1-based line number.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending line content.
        content: String,
    },
    /// A corrupt or truncated binary edge list.
    Corrupt(String),
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "I/O error: {e}"),
            EdgeListError::Malformed { line, content } => {
                write!(
                    f,
                    "malformed edge list line {line}: {content:?} (expected `source label target`)"
                )
            }
            EdgeListError::Corrupt(what) => {
                write!(f, "corrupt or truncated binary edge list: {what}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            EdgeListError::Malformed { .. } | EdgeListError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Parses a labeled graph from edge-list text.
pub fn parse_edge_list(text: &str) -> Result<LabeledGraph, EdgeListError> {
    let mut builder = GraphBuilder::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        match (fields.next(), fields.next(), fields.next()) {
            (Some(s), Some(l), Some(t)) => {
                builder.add_edge_named(s, l, t);
            }
            _ => {
                return Err(EdgeListError::Malformed {
                    line: i + 1,
                    content: raw_line.to_owned(),
                })
            }
        }
    }
    Ok(builder.build())
}

/// Reads a labeled graph from an edge-list file.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<LabeledGraph, EdgeListError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut text = String::new();
    io::Read::read_to_string(&mut reader, &mut text)?;
    parse_edge_list(&text)
}

/// Serializes a labeled graph to edge-list text.
///
/// Named vertices/labels are written with their names; anonymous ones with
/// their numeric ids.
pub fn to_edge_list(graph: &LabeledGraph) -> String {
    let mut out = String::new();
    out.push_str("# source\tlabel\ttarget\n");
    for e in graph.edges() {
        let source = graph
            .vertex_name(e.source)
            .map(str::to_owned)
            .unwrap_or_else(|| e.source.to_string());
        let target = graph
            .vertex_name(e.target)
            .map(str::to_owned)
            .unwrap_or_else(|| e.target.to_string());
        let label = graph
            .labels()
            .name(e.label)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("l{}", e.label.index()));
        out.push_str(&format!("{source}\t{label}\t{target}\n"));
    }
    out
}

/// Writes a labeled graph to an edge-list file.
pub fn write_edge_list<P: AsRef<Path>>(graph: &LabeledGraph, path: P) -> Result<(), EdgeListError> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(to_edge_list(graph).as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Binary edge-list format magic ("RLG1").
const BINARY_MAGIC: u32 = 0x524C_4731;

/// How many *isolated, unnamed* vertices a binary blob may declare without
/// any bytes backing them.
///
/// Building the CSR graph allocates O(vertex count) memory, and isolated
/// unnamed vertices occupy zero bytes in the blob — so without a bound, a
/// hostile 21-byte header declaring `u32::MAX` vertices would drive a
/// multi-gigabyte allocation before any content is validated. Unnamed blobs
/// may therefore declare at most `max(2 × edge count, this allowance)`
/// vertices (beyond the allowance, every vertex must appear in an edge);
/// named blobs are bounded by their name table instead. One million free
/// isolated vertices (~20 MB of CSR bookkeeping) keeps every realistic
/// sparse graph loadable while capping what a tiny blob can allocate.
const ISOLATED_VERTEX_ALLOWANCE: usize = 1 << 20;

/// Serializes a labeled graph to the binary edge-list format (magic
/// `"RLG1"`).
///
/// Layout (all integers little-endian): `u32` magic, `u32` vertex count,
/// `u32` label count, `u64` edge count, one has-vertex-names flag byte, the
/// label names (`u32` length + UTF-8 bytes each), the vertex names when the
/// flag is set (same encoding), then the edges (`u32` source, `u16` label,
/// `u32` target each, in out-edge order).
pub fn to_binary_edge_list(graph: &LabeledGraph) -> Vec<u8> {
    use bytes::BufMut;
    let mut buf = Vec::with_capacity(21 + graph.edge_count() * 10);
    buf.put_u32_le(BINARY_MAGIC);
    buf.put_u32_le(graph.vertex_count() as u32);
    buf.put_u32_le(graph.label_count() as u32);
    buf.put_u64_le(graph.edge_count() as u64);
    let has_names = graph.vertex_count() > 0 && graph.vertex_name(0).is_some();
    buf.put_u8(has_names as u8);
    let put_name = |buf: &mut Vec<u8>, name: &str| {
        buf.put_u32_le(name.len() as u32);
        buf.extend_from_slice(name.as_bytes());
    };
    for i in 0..graph.label_count() {
        let label = Label::from_index(i);
        match graph.labels().name(label) {
            Some(name) => put_name(&mut buf, name),
            None => put_name(&mut buf, &format!("l{i}")),
        }
    }
    if has_names {
        for v in graph.vertices() {
            let name = graph
                .vertex_name(v)
                .map(str::to_owned)
                .unwrap_or_else(|| v.to_string());
            put_name(&mut buf, &name);
        }
    }
    for e in graph.edges() {
        buf.put_u32_le(e.source);
        buf.put_u16_le(e.label.0);
        buf.put_u32_le(e.target);
    }
    buf
}

/// Deserializes a graph produced by [`to_binary_edge_list`], validating the
/// blob as untrusted input (see the module documentation).
pub fn from_binary_edge_list(data: &[u8]) -> Result<LabeledGraph, EdgeListError> {
    use bytes::Buf;
    let mut buf = data;
    let corrupt = |what: &str| EdgeListError::Corrupt(what.to_owned());
    let check = |ok: bool, what: &str| -> Result<(), EdgeListError> {
        if ok {
            Ok(())
        } else {
            Err(corrupt(what))
        }
    };
    check(buf.remaining() >= 21, "header")?;
    let magic = buf.get_u32_le();
    if magic != BINARY_MAGIC {
        return Err(EdgeListError::Corrupt(format!(
            "bad magic {magic:#x}, not a binary edge list"
        )));
    }
    let vertex_count = buf.get_u32_le() as usize;
    let label_count = buf.get_u32_le() as usize;
    if label_count > u16::MAX as usize + 1 {
        return Err(EdgeListError::Corrupt(format!(
            "label count {label_count} exceeds the u16 label id range"
        )));
    }
    let edge_count =
        usize::try_from(buf.get_u64_le()).map_err(|_| corrupt("edge count exceeds usize"))?;
    let has_names = match buf.get_u8() {
        0 => false,
        1 => true,
        other => {
            return Err(EdgeListError::Corrupt(format!(
                "has-names flag must be 0 or 1, found {other}"
            )))
        }
    };
    // Untrusted size fields: bound them by the bytes actually present
    // (division form, immune to multiplication overflow) before any loop or
    // allocation sized by them. Named blobs bound the vertex count through
    // the name table below; unnamed blobs must back vertices beyond the
    // isolated-vertex allowance with edges (see ISOLATED_VERTEX_ALLOWANCE).
    if !has_names && vertex_count > edge_count.saturating_mul(2).max(ISOLATED_VERTEX_ALLOWANCE) {
        return Err(EdgeListError::Corrupt(format!(
            "unnamed blob declares {vertex_count} vertices but only {edge_count} edges \
             back them"
        )));
    }
    let read_names =
        |buf: &mut &[u8], count: usize, what: &str| -> Result<Vec<String>, EdgeListError> {
            let count =
                crate::bounds::checked_len(count, 4, buf.remaining()).map_err(|_| corrupt(what))?;
            let mut names = Vec::with_capacity(count);
            let mut seen = std::collections::HashSet::with_capacity(count);
            for i in 0..count {
                check(buf.remaining() >= 4, "name length")?;
                let len = buf.get_u32_le() as usize;
                check(len <= buf.remaining(), "name bytes")?;
                let name = std::str::from_utf8(&buf[..len])
                    .map_err(|_| EdgeListError::Corrupt(format!("{what} {i} is not valid UTF-8")))?
                    .to_owned();
                *buf = &buf[len..];
                if !seen.insert(name.clone()) {
                    return Err(EdgeListError::Corrupt(format!(
                        "{what} {i} duplicates the name {name:?}"
                    )));
                }
                names.push(name);
            }
            Ok(names)
        };
    let label_names = read_names(&mut buf, label_count, "label name")?;
    let vertex_names = if has_names {
        Some(read_names(&mut buf, vertex_count, "vertex name")?)
    } else {
        None
    };
    let edge_count = crate::bounds::checked_len(edge_count, 10, buf.remaining())
        .map_err(|_| corrupt("edge table"))?;
    let mut edges = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let source = buf.get_u32_le();
        let label = buf.get_u16_le();
        let target = buf.get_u32_le();
        for id in [source, target] {
            if id as usize >= vertex_count {
                return Err(EdgeListError::Corrupt(format!(
                    "vertex id {id} out of range for {vertex_count} vertices"
                )));
            }
        }
        if label as usize >= label_count {
            return Err(EdgeListError::Corrupt(format!(
                "label id {label} out of range for {label_count} labels"
            )));
        }
        edges.push(Edge::new(source, Label(label), target));
    }
    if buf.remaining() > 0 {
        return Err(EdgeListError::Corrupt(format!(
            "{} trailing bytes after the last edge",
            buf.remaining()
        )));
    }
    let mut labels = LabelInterner::new();
    for name in &label_names {
        labels.intern(name);
    }
    Ok(LabeledGraph::from_edges(
        vertex_count,
        &edges,
        labels,
        vertex_names,
    ))
}

/// Writes a labeled graph to a binary edge-list file.
pub fn write_binary_edge_list<P: AsRef<Path>>(
    graph: &LabeledGraph,
    path: P,
) -> Result<(), EdgeListError> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(&to_binary_edge_list(graph))?;
    writer.flush()?;
    Ok(())
}

/// Reads a labeled graph from a binary edge-list file.
pub fn read_binary_edge_list<P: AsRef<Path>>(path: P) -> Result<LabeledGraph, EdgeListError> {
    from_binary_edge_list(&std::fs::read(path)?)
}

/// Reads an *unlabeled* edge list (`source target` per line), producing a
/// graph whose every edge carries the single label `l0`. This mirrors how the
/// paper ingests SNAP/KONECT graphs before synthetic label assignment.
pub fn parse_unlabeled_edge_list(text: &str) -> Result<LabeledGraph, EdgeListError> {
    let mut builder = GraphBuilder::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        match (fields.next(), fields.next()) {
            (Some(s), Some(t)) => {
                builder.add_edge_named(s, "l0", t);
            }
            _ => {
                return Err(EdgeListError::Malformed {
                    line: i + 1,
                    content: raw_line.to_owned(),
                })
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::fig2_graph;

    #[test]
    fn parse_simple_edge_list() {
        let text = "# comment\n a knows b \nb worksFor c\n\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.labels().resolve("knows").is_some());
    }

    #[test]
    fn malformed_line_is_reported_with_line_number() {
        let text = "a knows b\nbroken-line\n";
        match parse_edge_list(text) {
            Err(EdgeListError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_preserves_structure() {
        let g = fig2_graph();
        let text = to_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.label_count(), g.label_count());
        // Structural equivalence under the name mapping.
        for e in g.edges() {
            let s = back
                .vertex_id(g.vertex_name(e.source).unwrap())
                .expect("vertex preserved");
            let t = back
                .vertex_id(g.vertex_name(e.target).unwrap())
                .expect("vertex preserved");
            let l = back
                .labels()
                .resolve(g.labels().name(e.label).unwrap())
                .expect("label preserved");
            assert!(back.has_edge(s, l, t));
        }
    }

    #[test]
    fn file_round_trip() {
        let g = fig2_graph();
        let dir = std::env::temp_dir().join("rlc-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.edges");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(back.edge_count(), g.edge_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unlabeled_edge_list_gets_single_label() {
        let g = parse_unlabeled_edge_list("1 2\n2 3\n3 1\n").unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.label_count(), 1);
    }

    #[test]
    fn error_display_is_informative() {
        let err = parse_edge_list("oops").unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("line 1"));
        assert!(msg.contains("oops"));
        let corrupt = EdgeListError::Corrupt("header".into());
        assert!(format!("{corrupt}").contains("header"));
    }

    #[test]
    fn binary_round_trip_preserves_structure_and_names() {
        let g = fig2_graph();
        let blob = to_binary_edge_list(&g);
        let back = from_binary_edge_list(&blob).unwrap();
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.label_count(), g.label_count());
        for e in g.edges() {
            assert!(back.has_edge(e.source, e.label, e.target));
        }
        for v in g.vertices() {
            assert_eq!(back.vertex_name(v), g.vertex_name(v));
            assert_eq!(back.vertex_id(g.vertex_name(v).unwrap()), Some(v));
        }
        for l in g.labels().iter() {
            assert_eq!(back.labels().name(l), g.labels().name(l));
        }
        // The binary form is canonical: re-serializing yields the same bytes.
        assert_eq!(to_binary_edge_list(&back), blob);
    }

    #[test]
    fn binary_round_trip_without_vertex_names() {
        let mut b = GraphBuilder::with_capacity(4, 2);
        b.add_edge(0, crate::label::Label(0), 1);
        b.add_edge(1, crate::label::Label(1), 2);
        b.add_edge(2, crate::label::Label(0), 3);
        let g = b.build();
        let back = from_binary_edge_list(&to_binary_edge_list(&g)).unwrap();
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for e in g.edges() {
            assert!(back.has_edge(e.source, e.label, e.target));
        }
    }

    #[test]
    fn binary_file_round_trip() {
        let g = fig2_graph();
        let dir = std::env::temp_dir().join("rlc-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.rlg");
        write_binary_edge_list(&g, &path).unwrap();
        let back = read_binary_edge_list(&path).unwrap();
        assert_eq!(back.edge_count(), g.edge_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_binary_blobs_are_rejected() {
        let g = fig2_graph();
        let blob = to_binary_edge_list(&g);

        // Truncations at every prefix must error, never panic.
        for len in 0..blob.len() {
            assert!(from_binary_edge_list(&blob[..len]).is_err(), "prefix {len}");
        }

        // Bad magic.
        let mut bad = blob.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            from_binary_edge_list(&bad),
            Err(EdgeListError::Corrupt(m)) if m.contains("magic")
        ));

        // Oversized edge count must be caught by the division-form bound
        // before any allocation.
        let mut bad = blob.clone();
        bad[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(from_binary_edge_list(&bad).is_err());

        // Invalid has-names flag.
        let mut bad = blob.clone();
        bad[20] = 9;
        assert!(matches!(
            from_binary_edge_list(&bad),
            Err(EdgeListError::Corrupt(m)) if m.contains("flag")
        ));

        // Out-of-range ids: shrink the declared vertex count.
        let mut bad = blob.clone();
        bad[4..8].copy_from_slice(&1u32.to_le_bytes());
        assert!(from_binary_edge_list(&bad).is_err());

        // Trailing bytes.
        let mut bad = blob.clone();
        bad.push(0);
        assert!(matches!(
            from_binary_edge_list(&bad),
            Err(EdgeListError::Corrupt(m)) if m.contains("trailing")
        ));

        // Oversized label count (beyond the u16 id range).
        let mut bad = blob;
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(from_binary_edge_list(&bad).is_err());
    }

    #[test]
    fn tiny_blob_cannot_declare_billions_of_unnamed_vertices() {
        // A hostile 21-byte header declaring u32::MAX isolated unnamed
        // vertices must be rejected before any O(vertex_count) allocation.
        use bytes::BufMut;
        let mut buf = Vec::new();
        buf.put_u32_le(super::BINARY_MAGIC);
        buf.put_u32_le(u32::MAX); // vertices
        buf.put_u32_le(0); // labels
        buf.put_u64_le(0); // edges
        buf.put_u8(0); // unnamed
        assert!(matches!(
            from_binary_edge_list(&buf),
            Err(EdgeListError::Corrupt(m)) if m.contains("back them")
        ));
        // Isolated unnamed vertices below the allowance stay loadable.
        let mut b = GraphBuilder::with_capacity(1000, 1);
        b.add_edge(0, crate::label::Label(0), 1);
        let g = b.build();
        let back = from_binary_edge_list(&to_binary_edge_list(&g)).unwrap();
        assert_eq!(back.vertex_count(), g.vertex_count());
    }

    #[test]
    fn duplicate_names_in_binary_blobs_are_rejected() {
        // Hand-build a blob with two vertices sharing a name.
        use bytes::BufMut;
        let mut buf = Vec::new();
        buf.put_u32_le(super::BINARY_MAGIC);
        buf.put_u32_le(2); // vertices
        buf.put_u32_le(1); // labels
        buf.put_u64_le(0); // edges
        buf.put_u8(1); // named
        for name in ["x", "dup", "dup"] {
            buf.put_u32_le(name.len() as u32);
            buf.extend_from_slice(name.as_bytes());
        }
        assert!(matches!(
            from_binary_edge_list(&buf),
            Err(EdgeListError::Corrupt(m)) if m.contains("duplicates")
        ));
    }
}
