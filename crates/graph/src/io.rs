//! Plain-text edge-list persistence for labeled graphs.
//!
//! The format is one edge per line, `source<TAB>label<TAB>target`, with `#`
//! comment lines. Vertex and label tokens are arbitrary whitespace-free
//! strings; numeric tokens are kept as names too, so a round trip through the
//! format is lossless up to vertex/label renumbering.

use crate::builder::GraphBuilder;
use crate::graph::LabeledGraph;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors produced by edge-list parsing.
#[derive(Debug)]
pub enum EdgeListError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line (missing fields), with its 1-based line number.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending line content.
        content: String,
    },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "I/O error: {e}"),
            EdgeListError::Malformed { line, content } => {
                write!(
                    f,
                    "malformed edge list line {line}: {content:?} (expected `source label target`)"
                )
            }
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            EdgeListError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Parses a labeled graph from edge-list text.
pub fn parse_edge_list(text: &str) -> Result<LabeledGraph, EdgeListError> {
    let mut builder = GraphBuilder::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        match (fields.next(), fields.next(), fields.next()) {
            (Some(s), Some(l), Some(t)) => {
                builder.add_edge_named(s, l, t);
            }
            _ => {
                return Err(EdgeListError::Malformed {
                    line: i + 1,
                    content: raw_line.to_owned(),
                })
            }
        }
    }
    Ok(builder.build())
}

/// Reads a labeled graph from an edge-list file.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<LabeledGraph, EdgeListError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut text = String::new();
    io::Read::read_to_string(&mut reader, &mut text)?;
    parse_edge_list(&text)
}

/// Serializes a labeled graph to edge-list text.
///
/// Named vertices/labels are written with their names; anonymous ones with
/// their numeric ids.
pub fn to_edge_list(graph: &LabeledGraph) -> String {
    let mut out = String::new();
    out.push_str("# source\tlabel\ttarget\n");
    for e in graph.edges() {
        let source = graph
            .vertex_name(e.source)
            .map(str::to_owned)
            .unwrap_or_else(|| e.source.to_string());
        let target = graph
            .vertex_name(e.target)
            .map(str::to_owned)
            .unwrap_or_else(|| e.target.to_string());
        let label = graph
            .labels()
            .name(e.label)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("l{}", e.label.index()));
        out.push_str(&format!("{source}\t{label}\t{target}\n"));
    }
    out
}

/// Writes a labeled graph to an edge-list file.
pub fn write_edge_list<P: AsRef<Path>>(graph: &LabeledGraph, path: P) -> Result<(), EdgeListError> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(to_edge_list(graph).as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Reads an *unlabeled* edge list (`source target` per line), producing a
/// graph whose every edge carries the single label `l0`. This mirrors how the
/// paper ingests SNAP/KONECT graphs before synthetic label assignment.
pub fn parse_unlabeled_edge_list(text: &str) -> Result<LabeledGraph, EdgeListError> {
    let mut builder = GraphBuilder::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        match (fields.next(), fields.next()) {
            (Some(s), Some(t)) => {
                builder.add_edge_named(s, "l0", t);
            }
            _ => {
                return Err(EdgeListError::Malformed {
                    line: i + 1,
                    content: raw_line.to_owned(),
                })
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::fig2_graph;

    #[test]
    fn parse_simple_edge_list() {
        let text = "# comment\n a knows b \nb worksFor c\n\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.labels().resolve("knows").is_some());
    }

    #[test]
    fn malformed_line_is_reported_with_line_number() {
        let text = "a knows b\nbroken-line\n";
        match parse_edge_list(text) {
            Err(EdgeListError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_preserves_structure() {
        let g = fig2_graph();
        let text = to_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.label_count(), g.label_count());
        // Structural equivalence under the name mapping.
        for e in g.edges() {
            let s = back
                .vertex_id(g.vertex_name(e.source).unwrap())
                .expect("vertex preserved");
            let t = back
                .vertex_id(g.vertex_name(e.target).unwrap())
                .expect("vertex preserved");
            let l = back
                .labels()
                .resolve(g.labels().name(e.label).unwrap())
                .expect("label preserved");
            assert!(back.has_edge(s, l, t));
        }
    }

    #[test]
    fn file_round_trip() {
        let g = fig2_graph();
        let dir = std::env::temp_dir().join("rlc-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.edges");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(back.edge_count(), g.edge_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unlabeled_edge_list_gets_single_label() {
        let g = parse_unlabeled_edge_list("1 2\n2 3\n3 1\n").unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.label_count(), 1);
    }

    #[test]
    fn error_display_is_informative() {
        let err = parse_edge_list("oops").unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("line 1"));
        assert!(msg.contains("oops"));
    }
}
