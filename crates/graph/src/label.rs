//! Edge labels and label interning.
//!
//! The RLC index only ever compares labels for equality and stores short
//! sequences of them, so labels are represented as dense `u16` ids produced
//! by a [`LabelInterner`]. Real-world graphs used by the paper have at most
//! 50 distinct labels (Table III), so `u16` leaves ample headroom while
//! keeping label sequences compact.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A dense edge-label identifier.
///
/// Labels are created by [`LabelInterner::intern`]; the wrapped value is the
/// interner-assigned index and is stable for the lifetime of the graph.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(pub u16);

impl Label {
    /// Returns the raw dense index of this label.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a label from a raw dense index.
    ///
    /// Intended for generators and tests that work with anonymous labels
    /// (`l0`, `l1`, …) rather than interned names.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u16::MAX as usize, "label index out of range");
        Label(index as u16)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Bidirectional mapping between label names and dense [`Label`] ids.
///
/// The interner is append-only: once a name is interned its id never changes.
///
/// Only the name list is serialized; deserialization rebuilds the name → id
/// map automatically, so a deserialized interner resolves names immediately.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LabelInterner {
    names: Vec<String>,
    #[serde(skip)]
    by_name: HashMap<String, Label>,
}

impl Deserialize for LabelInterner {
    /// Reconstructs the interner and rebuilds the skipped lookup map.
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a map for LabelInterner"))?;
        let mut interner = LabelInterner {
            names: serde::map_field(entries, "names", "LabelInterner")?,
            by_name: HashMap::new(),
        };
        interner.rebuild_lookup();
        Ok(interner)
    }
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner pre-populated with `count` anonymous labels named
    /// `l0`, `l1`, … — the convention used for synthetic graphs.
    pub fn anonymous(count: usize) -> Self {
        let mut interner = Self::new();
        for i in 0..count {
            interner.intern(&format!("l{i}"));
        }
        interner
    }

    /// Interns `name`, returning its label id. Idempotent.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&label) = self.by_name.get(name) {
            return label;
        }
        let label = Label::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), label);
        label
    }

    /// Returns the label for `name` if it was interned before.
    pub fn resolve(&self, name: &str) -> Option<Label> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `label`, if known.
    pub fn name(&self, label: Label) -> Option<&str> {
        self.names.get(label.index()).map(String::as_str)
    }

    /// Number of distinct labels interned so far (the paper's `|L|`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all labels in id order.
    pub fn iter(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.names.len()).map(Label::from_index)
    }

    /// Rebuilds the name → id map; used after deserialization, where the map
    /// is skipped to keep the serialized form minimal.
    pub fn rebuild_lookup(&mut self) {
        self.by_name = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), Label::from_index(i)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("knows");
        let b = interner.intern("worksFor");
        let a2 = interner.intern("knows");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn resolve_and_name_round_trip() {
        let mut interner = LabelInterner::new();
        let debits = interner.intern("debits");
        assert_eq!(interner.resolve("debits"), Some(debits));
        assert_eq!(interner.name(debits), Some("debits"));
        assert_eq!(interner.resolve("missing"), None);
        assert_eq!(interner.name(Label::from_index(7)), None);
    }

    #[test]
    fn anonymous_labels_are_sequential() {
        let interner = LabelInterner::anonymous(4);
        assert_eq!(interner.len(), 4);
        assert_eq!(interner.resolve("l2"), Some(Label(2)));
        assert_eq!(interner.name(Label(3)), Some("l3"));
    }

    #[test]
    fn deserialization_rebuilds_resolution_automatically() {
        let interner = LabelInterner::anonymous(3);
        let json = serde_json::to_string(&interner).unwrap();
        let restored: LabelInterner = serde_json::from_str(&json).unwrap();
        // The lookup map is not serialized, but the custom Deserialize impl
        // rebuilds it — no rebuild_lookup() call needed.
        assert_eq!(restored.resolve("l1"), Some(Label(1)));
        assert_eq!(restored.len(), interner.len());
    }

    #[test]
    fn label_display_and_debug() {
        let l = Label(5);
        assert_eq!(format!("{l}"), "l5");
        assert_eq!(format!("{l:?}"), "l5");
        assert_eq!(l.index(), 5);
    }

    #[test]
    fn iter_yields_all_labels_in_order() {
        let interner = LabelInterner::anonymous(5);
        let collected: Vec<Label> = interner.iter().collect();
        assert_eq!(collected, (0..5).map(Label::from_index).collect::<Vec<_>>());
    }
}
