//! Vertex partitioning of a [`LabeledGraph`] into disjoint shards.
//!
//! The sharded engine (`rlc-shard`) cuts a graph into `S` vertex-disjoint
//! shards, builds one RLC index per shard, and stitches cross-shard queries
//! through the *cut edges* — the edges whose endpoints live in different
//! shards. This module holds the graph-level half of that design: the
//! partitioning strategies, the `global ⇄ (shard, local)` id mapping, the
//! cut-edge enumeration, and the per-shard subgraph extraction.
//!
//! Local ids are **canonical**: within a shard, vertices are numbered by
//! ascending global id. A partition is therefore fully determined by its
//! shard assignment vector, which is what the `RSH1` manifest format
//! persists ([`Partition::from_assignment`] rebuilds everything else).

use crate::graph::{Edge, LabeledGraph, VertexId};

/// How vertices are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Contiguous global-id ranges of (near-)equal size. Preserves any
    /// locality already present in the vertex numbering; the cheapest
    /// strategy and the best one for range-clustered inputs.
    Contiguous,
    /// Deterministic multiplicative hash of the global id. Spreads hot
    /// vertices uniformly but cuts the most edges on locality-friendly
    /// inputs; the seed varies the assignment without changing its
    /// distribution.
    Hash {
        /// Seed mixed into the hash (two seeds give independent spreads).
        seed: u64,
    },
    /// Degree-aware greedy balancing: vertices are placed in descending
    /// total-degree order onto the shard with the smallest accumulated
    /// degree, so every shard ends up with a near-equal share of edge
    /// endpoints (not just of vertices). Deterministic: ties break by
    /// vertex id, then by shard id.
    DegreeAware,
}

/// A vertex-disjoint partition of a graph into `shard_count` shards, with
/// the `global ⇄ (shard, local)` mapping both ways.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    shard_count: usize,
    /// Global vertex id → owning shard.
    shard_of: Vec<u32>,
    /// Global vertex id → local id within the owning shard.
    local_of: Vec<u32>,
    /// Shard → local id → global vertex id (ascending global order).
    globals: Vec<Vec<VertexId>>,
}

impl Partition {
    /// Partitions `graph` into `shard_count` shards under `strategy`.
    ///
    /// `shard_count` must be at least 1; shards may end up empty when the
    /// graph has fewer vertices than shards.
    pub fn new(
        graph: &LabeledGraph,
        strategy: PartitionStrategy,
        shard_count: usize,
    ) -> Result<Self, String> {
        if shard_count == 0 {
            return Err("shard count must be at least 1".to_owned());
        }
        if shard_count > u32::MAX as usize {
            return Err(format!("shard count {shard_count} exceeds u32 range"));
        }
        let n = graph.vertex_count();
        let mut shard_of = vec![0u32; n];
        match strategy {
            PartitionStrategy::Contiguous => {
                // Ceil-sized ranges: the first `n % shard_count` shards get
                // one extra vertex, so sizes differ by at most one.
                let base = n / shard_count;
                let extra = n % shard_count;
                let mut next = 0usize;
                for shard in 0..shard_count {
                    let size = base + usize::from(shard < extra);
                    for slot in shard_of.iter_mut().skip(next).take(size) {
                        *slot = shard as u32;
                    }
                    next += size;
                }
            }
            PartitionStrategy::Hash { seed } => {
                for (v, slot) in shard_of.iter_mut().enumerate() {
                    // Fibonacci hashing of (id ^ seed): cheap, deterministic,
                    // and uniform over the shard count.
                    let mixed = (v as u64 ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    *slot = ((mixed >> 17) % shard_count as u64) as u32;
                }
            }
            PartitionStrategy::DegreeAware => {
                let mut order: Vec<VertexId> = (0..n as VertexId).collect();
                order.sort_by_key(|&v| {
                    (
                        std::cmp::Reverse(graph.in_degree(v) + graph.out_degree(v)),
                        v,
                    )
                });
                // (accumulated degree, shard id) min-selection keeps the
                // assignment deterministic without a priority queue: the
                // shard count is small, a linear scan per vertex is fine.
                let mut load = vec![0usize; shard_count];
                for v in order {
                    let lightest = (0..shard_count)
                        .min_by_key(|&s| (load[s], s))
                        // rlc-analyze: allow(panic-free-library) — shard_count >= 1 is validated by Partition's constructor, so the range is never empty
                        .expect("shard_count >= 1");
                    shard_of[v as usize] = lightest as u32;
                    // Count both endpoints plus one so empty vertices still
                    // spread across shards instead of piling onto shard 0.
                    load[lightest] += graph.in_degree(v) + graph.out_degree(v) + 1;
                }
            }
        }
        Ok(Self::from_shard_of(shard_count, shard_of))
    }

    /// Rebuilds a partition from a raw shard-assignment vector (the form the
    /// `RSH1` manifest persists), validating every entry against
    /// `shard_count`. Local ids are re-derived canonically (ascending global
    /// id within each shard), so two partitions with equal assignments are
    /// equal in every mapping.
    pub fn from_assignment(shard_count: usize, shard_of: Vec<u32>) -> Result<Self, String> {
        if shard_count == 0 {
            return Err("shard count must be at least 1".to_owned());
        }
        for (v, &s) in shard_of.iter().enumerate() {
            if s as usize >= shard_count {
                return Err(format!(
                    "vertex {v} assigned to shard {s}, but the partition has only \
                     {shard_count} shards"
                ));
            }
        }
        Ok(Self::from_shard_of(shard_count, shard_of))
    }

    /// Derives the canonical local ids and per-shard vertex lists from a
    /// validated assignment.
    fn from_shard_of(shard_count: usize, shard_of: Vec<u32>) -> Self {
        let mut globals: Vec<Vec<VertexId>> = vec![Vec::new(); shard_count];
        let mut local_of = vec![0u32; shard_of.len()];
        for (v, &s) in shard_of.iter().enumerate() {
            local_of[v] = globals[s as usize].len() as u32;
            globals[s as usize].push(v as VertexId);
        }
        Partition {
            shard_count,
            shard_of,
            local_of,
            globals,
        }
    }

    /// Number of shards (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Number of vertices across all shards.
    pub fn vertex_count(&self) -> usize {
        self.shard_of.len()
    }

    /// The raw shard assignment, indexed by global vertex id.
    pub fn assignment(&self) -> &[u32] {
        &self.shard_of
    }

    /// The shard owning global vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.shard_of[v as usize] as usize
    }

    /// Maps a global vertex id to its `(shard, local id)` pair.
    #[inline]
    pub fn locate(&self, v: VertexId) -> (usize, VertexId) {
        (
            self.shard_of[v as usize] as usize,
            self.local_of[v as usize],
        )
    }

    /// Maps a `(shard, local id)` pair back to the global vertex id.
    #[inline]
    pub fn global(&self, shard: usize, local: VertexId) -> VertexId {
        self.globals[shard][local as usize]
    }

    /// Global ids of the vertices in `shard`, ascending (index = local id).
    pub fn shard_vertices(&self, shard: usize) -> &[VertexId] {
        &self.globals[shard]
    }

    /// Whether an edge crosses shards.
    #[inline]
    pub fn is_cut(&self, edge: &Edge) -> bool {
        self.shard_of[edge.source as usize] != self.shard_of[edge.target as usize]
    }

    /// All cut edges of `graph` under this partition, in the graph's edge
    /// iteration order (deterministic, used verbatim by the manifest).
    pub fn cut_edges(&self, graph: &LabeledGraph) -> Vec<Edge> {
        graph.edges().filter(|e| self.is_cut(e)).collect()
    }

    /// Extracts the subgraph of `shard`: its vertices renumbered to local
    /// ids, its intra-shard edges, and the parent graph's label space (so
    /// label ids stay comparable across shards and with the full graph).
    /// Vertex names are dropped — shard-local evaluation works on ids.
    pub fn shard_subgraph(&self, graph: &LabeledGraph, shard: usize) -> LabeledGraph {
        let vertices = &self.globals[shard];
        let mut edges = Vec::new();
        for (local, &v) in vertices.iter().enumerate() {
            for (target, label) in graph.out_edges(v) {
                if self.shard_of[target as usize] as usize == shard {
                    edges.push(Edge::new(
                        local as VertexId,
                        label,
                        self.local_of[target as usize],
                    ));
                }
            }
        }
        LabeledGraph::from_edges(vertices.len(), &edges, graph.labels().clone(), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{erdos_renyi, SyntheticConfig};

    fn sample() -> LabeledGraph {
        erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 7))
    }

    #[test]
    fn every_strategy_yields_a_bijective_mapping() {
        let g = sample();
        for strategy in [
            PartitionStrategy::Contiguous,
            PartitionStrategy::Hash { seed: 11 },
            PartitionStrategy::DegreeAware,
        ] {
            for shards in [1usize, 2, 7, 8] {
                let p = Partition::new(&g, strategy, shards).unwrap();
                assert_eq!(p.shard_count(), shards);
                assert_eq!(p.vertex_count(), g.vertex_count());
                let total: usize = (0..shards).map(|s| p.shard_vertices(s).len()).sum();
                assert_eq!(total, g.vertex_count(), "shards must cover every vertex");
                for v in g.vertices() {
                    let (shard, local) = p.locate(v);
                    assert_eq!(p.global(shard, local), v, "locate/global must invert");
                    assert_eq!(p.shard_of(v), shard);
                }
            }
        }
    }

    #[test]
    fn contiguous_ranges_are_balanced_and_ordered() {
        let g = sample();
        let p = Partition::new(&g, PartitionStrategy::Contiguous, 7).unwrap();
        for s in 0..7 {
            let vs = p.shard_vertices(s);
            assert!(vs.len() == 8 || vs.len() == 9, "sizes differ by at most 1");
            assert!(vs.windows(2).all(|w| w[0] < w[1]), "ascending global ids");
        }
        // Ranges are consecutive: shard 0 gets the smallest ids.
        assert_eq!(p.shard_of(0), 0);
        assert_eq!(p.shard_of(59), 6);
    }

    #[test]
    fn degree_aware_balances_edge_endpoints() {
        let g = sample();
        let p = Partition::new(&g, PartitionStrategy::DegreeAware, 4).unwrap();
        let load = |s: usize| -> usize {
            p.shard_vertices(s)
                .iter()
                .map(|&v| g.in_degree(v) + g.out_degree(v))
                .sum()
        };
        let loads: Vec<usize> = (0..4).map(load).collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        // Greedy balancing keeps the spread within the largest degree.
        let max_degree = g
            .vertices()
            .map(|v| g.in_degree(v) + g.out_degree(v))
            .max()
            .unwrap();
        assert!(
            max - min <= max_degree + 4,
            "degree loads {loads:?} spread more than one vertex's degree"
        );
    }

    #[test]
    fn single_shard_has_no_cut_edges() {
        let g = sample();
        let p = Partition::new(&g, PartitionStrategy::Hash { seed: 3 }, 1).unwrap();
        assert!(p.cut_edges(&g).is_empty());
        let sub = p.shard_subgraph(&g, 0);
        assert_eq!(sub.vertex_count(), g.vertex_count());
        assert_eq!(sub.edge_count(), g.edge_count());
    }

    #[test]
    fn cut_edges_and_shard_subgraphs_partition_the_edge_set() {
        let g = sample();
        for strategy in [
            PartitionStrategy::Contiguous,
            PartitionStrategy::Hash { seed: 5 },
            PartitionStrategy::DegreeAware,
        ] {
            let p = Partition::new(&g, strategy, 5).unwrap();
            let cut = p.cut_edges(&g);
            let intra: usize = (0..5).map(|s| p.shard_subgraph(&g, s).edge_count()).sum();
            assert_eq!(cut.len() + intra, g.edge_count());
            for e in &cut {
                assert!(p.is_cut(e));
                assert!(g.has_edge(e.source, e.label, e.target));
            }
        }
    }

    #[test]
    fn shard_subgraphs_preserve_local_adjacency() {
        let g = sample();
        let p = Partition::new(&g, PartitionStrategy::Contiguous, 3).unwrap();
        for shard in 0..3 {
            let sub = p.shard_subgraph(&g, shard);
            assert_eq!(sub.vertex_count(), p.shard_vertices(shard).len());
            assert_eq!(sub.label_count(), g.label_count(), "shared label space");
            for local in 0..sub.vertex_count() as VertexId {
                let global = p.global(shard, local);
                for (lt, label) in sub.out_edges(local) {
                    let gt = p.global(shard, lt);
                    assert!(g.has_edge(global, label, gt));
                }
                // Every intra-shard edge of the parent appears locally.
                let intra = g
                    .out_edges(global)
                    .iter()
                    .filter(|&(t, _)| p.shard_of(t) == shard)
                    .count();
                assert_eq!(sub.out_degree(local), intra);
            }
        }
    }

    #[test]
    fn from_assignment_round_trips_and_validates() {
        let g = sample();
        let p = Partition::new(&g, PartitionStrategy::DegreeAware, 4).unwrap();
        let back = Partition::from_assignment(4, p.assignment().to_vec()).unwrap();
        assert_eq!(back, p, "assignment fully determines the partition");
        // Out-of-range shard ids are rejected.
        let err = Partition::from_assignment(2, vec![0, 1, 2]).unwrap_err();
        assert!(err.contains("shard 2"), "unexpected error: {err}");
        assert!(Partition::from_assignment(0, vec![]).is_err());
    }

    #[test]
    fn more_shards_than_vertices_leaves_empty_shards() {
        let mut b = crate::builder::GraphBuilder::new();
        b.add_edge_named("a", "x", "b");
        let g = b.build();
        for strategy in [
            PartitionStrategy::Contiguous,
            PartitionStrategy::Hash { seed: 1 },
            PartitionStrategy::DegreeAware,
        ] {
            let p = Partition::new(&g, strategy, 8).unwrap();
            let total: usize = (0..8).map(|s| p.shard_vertices(s).len()).sum();
            assert_eq!(total, 2);
            let nonempty = (0..8).filter(|&s| !p.shard_vertices(s).is_empty()).count();
            assert!(nonempty <= 2);
            // Subgraph extraction works for empty shards too.
            for s in 0..8 {
                let sub = p.shard_subgraph(&g, s);
                assert_eq!(sub.vertex_count(), p.shard_vertices(s).len());
            }
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        let g = sample();
        assert!(Partition::new(&g, PartitionStrategy::Contiguous, 0).is_err());
    }

    #[test]
    fn hash_seeds_vary_the_assignment() {
        let g = sample();
        let a = Partition::new(&g, PartitionStrategy::Hash { seed: 1 }, 4).unwrap();
        let b = Partition::new(&g, PartitionStrategy::Hash { seed: 2 }, 4).unwrap();
        assert_ne!(a.assignment(), b.assignment());
        // Same seed is deterministic.
        let a2 = Partition::new(&g, PartitionStrategy::Hash { seed: 1 }, 4).unwrap();
        assert_eq!(a, a2);
    }
}
