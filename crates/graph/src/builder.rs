//! Incremental construction of [`LabeledGraph`] instances.

use crate::graph::{Edge, LabeledGraph, VertexId};
use crate::label::{Label, LabelInterner};
use std::collections::HashMap;

/// Builder for [`LabeledGraph`].
///
/// Supports both *named* construction (vertices and labels given as strings,
/// interned on first use) and *dense* construction (vertices given as `u32`
/// ids, labels as [`Label`]), which is what the synthetic generators use.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<Edge>,
    labels: LabelInterner,
    vertex_names: Vec<String>,
    vertex_lookup: HashMap<String, VertexId>,
    /// Highest dense vertex id seen plus one (for id-based construction).
    min_vertex_count: usize,
    named: bool,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder for a dense-id graph with `vertex_count` vertices and
    /// `label_count` anonymous labels (`l0`…).
    pub fn with_capacity(vertex_count: usize, label_count: usize) -> Self {
        GraphBuilder {
            edges: Vec::new(),
            labels: LabelInterner::anonymous(label_count),
            vertex_names: Vec::new(),
            vertex_lookup: HashMap::new(),
            min_vertex_count: vertex_count,
            named: false,
        }
    }

    /// Ensures a vertex named `name` exists and returns its id.
    pub fn add_vertex(&mut self, name: &str) -> VertexId {
        self.named = true;
        if let Some(&v) = self.vertex_lookup.get(name) {
            return v;
        }
        let v = self.vertex_names.len() as VertexId;
        self.vertex_names.push(name.to_owned());
        self.vertex_lookup.insert(name.to_owned(), v);
        if self.vertex_names.len() > self.min_vertex_count {
            self.min_vertex_count = self.vertex_names.len();
        }
        v
    }

    /// Adds an edge between named vertices with a named label, interning all
    /// three strings as needed. Returns the created edge.
    pub fn add_edge_named(&mut self, source: &str, label: &str, target: &str) -> Edge {
        let s = self.add_vertex(source);
        let t = self.add_vertex(target);
        let l = self.labels.intern(label);
        let e = Edge::new(s, l, t);
        self.edges.push(e);
        e
    }

    /// Adds an edge between dense vertex ids with an already-known label.
    pub fn add_edge(&mut self, source: VertexId, label: Label, target: VertexId) {
        let needed = (source.max(target) as usize) + 1;
        if needed > self.min_vertex_count {
            self.min_vertex_count = needed;
        }
        debug_assert!(
            label.index() < self.labels.len().max(label.index() + 1),
            "label must be interned before use"
        );
        self.edges.push(Edge::new(source, label, target));
    }

    /// Interns a label name, returning its id.
    pub fn intern_label(&mut self, name: &str) -> Label {
        self.labels.intern(name)
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of vertices the built graph will have.
    pub fn vertex_count(&self) -> usize {
        self.min_vertex_count
    }

    /// Finalizes the builder into an immutable [`LabeledGraph`].
    pub fn build(self) -> LabeledGraph {
        let names = if self.named {
            Some(self.vertex_names)
        } else {
            None
        };
        // Dense-id construction may reference labels never interned by name;
        // make sure the interner covers the largest label index used.
        let mut labels = self.labels;
        let max_label = self
            .edges
            .iter()
            .map(|e| e.label.index())
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        while labels.len() < max_label {
            let next = labels.len();
            labels.intern(&format!("l{next}"));
        }
        LabeledGraph::from_edges(self.min_vertex_count, &self.edges, labels, names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_construction_interns_vertices_once() {
        let mut b = GraphBuilder::new();
        let v1 = b.add_vertex("a");
        let v2 = b.add_vertex("a");
        assert_eq!(v1, v2);
        b.add_edge_named("a", "x", "b");
        let g = b.build();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.vertex_id("a"), Some(v1));
    }

    #[test]
    fn dense_construction_expands_vertex_count() {
        let mut b = GraphBuilder::with_capacity(3, 2);
        b.add_edge(0, Label(0), 1);
        b.add_edge(1, Label(1), 7);
        let g = b.build();
        assert_eq!(g.vertex_count(), 8);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.label_count(), 2);
        assert!(g.vertex_name(0).is_none());
    }

    #[test]
    fn dense_construction_grows_label_space_when_needed() {
        let mut b = GraphBuilder::with_capacity(2, 1);
        b.add_edge(0, Label(4), 1);
        let g = b.build();
        assert_eq!(g.label_count(), 5);
    }

    #[test]
    fn isolated_vertices_survive_build() {
        let mut b = GraphBuilder::new();
        b.add_vertex("lonely");
        b.add_edge_named("a", "x", "b");
        let g = b.build();
        assert_eq!(g.vertex_count(), 3);
        let lonely = g.vertex_id("lonely").unwrap();
        assert_eq!(g.out_degree(lonely), 0);
        assert_eq!(g.in_degree(lonely), 0);
    }

    #[test]
    fn with_capacity_keeps_declared_vertex_count() {
        let b = GraphBuilder::with_capacity(10, 3);
        let g = b.build();
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.label_count(), 3);
    }
}
