//! # rlc-graph
//!
//! Edge-labeled directed graph substrate used by the RLC index reproduction
//! ("A Reachability Index for Recursive Label-Concatenated Graph Queries",
//! ICDE 2023).
//!
//! The crate provides:
//!
//! * [`LabeledGraph`] — an immutable, CSR-backed edge-labeled directed graph
//!   with both out- and in-adjacency, the representation every algorithm in
//!   the workspace runs on;
//! * [`GraphBuilder`] — an incremental builder with string interning for
//!   vertex names and edge labels;
//! * [`generate`] — synthetic graph generators (Erdős–Rényi, Barabási–Albert)
//!   and the Zipfian label assignment the paper uses for unlabeled inputs;
//! * [`stats`] — the graph statistics reported in Table III of the paper
//!   (self-loop count, directed triangle count, degree distribution);
//! * [`scc`] — Tarjan's strongly connected components, used by statistics and
//!   workload generation;
//! * [`io`] — edge-list persistence: a plain-text format and a hardened
//!   binary format whose loader validates untrusted blobs;
//! * [`bounds`] — the shared division-form bound check (`checked_len`)
//!   every binary decoder sizes untrusted allocations through;
//! * [`partition`] — vertex partitioning into disjoint shards with cut-edge
//!   enumeration and subgraph extraction (the substrate of `rlc-shard`);
//! * [`examples`] — the two illustrative graphs of the paper (Fig. 1 and
//!   Fig. 2), used throughout tests and examples.
//!
//! ## Quick example
//!
//! ```
//! use rlc_graph::{GraphBuilder, Label};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge_named("a", "knows", "b");
//! b.add_edge_named("b", "knows", "c");
//! let g = b.build();
//! assert_eq!(g.vertex_count(), 3);
//! assert_eq!(g.edge_count(), 2);
//! let knows: Label = g.labels().resolve("knows").unwrap();
//! let a = g.vertex_id("a").unwrap();
//! assert_eq!(g.out_edges(a).len(), 1);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod builder;
pub mod examples;
pub mod generate;
pub mod graph;
pub mod io;
pub mod label;
pub mod partition;
pub mod scc;
pub mod stats;

pub use bounds::{checked_len, LengthBoundError};
pub use builder::GraphBuilder;
pub use graph::{Edge, LabeledGraph, VertexId};
pub use label::{Label, LabelInterner};
pub use partition::{Partition, PartitionStrategy};
pub use stats::GraphStats;
