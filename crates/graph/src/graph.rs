//! The immutable CSR-backed edge-labeled directed graph.

use crate::label::{Label, LabelInterner};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense vertex identifier, `0..vertex_count()`.
pub type VertexId = u32;

/// A labeled directed edge `(source, label, target)`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub source: VertexId,
    /// Edge label.
    pub label: Label,
    /// Target vertex.
    pub target: VertexId,
}

impl Edge {
    /// Creates an edge.
    pub fn new(source: VertexId, label: Label, target: VertexId) -> Self {
        Edge {
            source,
            label,
            target,
        }
    }
}

/// An immutable edge-labeled directed multigraph `G = (V, E, L)` stored in
/// compressed sparse row (CSR) form for both directions.
///
/// Vertices are dense `u32` ids. Both the out-adjacency (`v → (target,
/// label)`) and the in-adjacency (`v → (source, label)`) are materialized
/// because the RLC indexing algorithm performs forward *and* backward
/// kernel-based searches from every vertex.
///
/// Construct instances with [`crate::GraphBuilder`] or the generators in
/// [`crate::generate`].
///
/// Deserialization is self-healing: the name and label lookup maps (which
/// are skipped during serialization to keep the payload minimal) are rebuilt
/// automatically by the manual [`Deserialize`] impl, so a freshly
/// deserialized graph resolves [`LabeledGraph::vertex_id`] and label names
/// without any extra call.
#[derive(Debug, Clone, Serialize)]
pub struct LabeledGraph {
    vertex_count: usize,
    /// CSR offsets into `out_targets`/`out_labels`, length `vertex_count + 1`.
    out_offsets: Vec<u32>,
    out_targets: Vec<VertexId>,
    out_labels: Vec<Label>,
    /// CSR offsets into `in_sources`/`in_labels`, length `vertex_count + 1`.
    in_offsets: Vec<u32>,
    in_sources: Vec<VertexId>,
    in_labels: Vec<Label>,
    labels: LabelInterner,
    /// Optional vertex names (present when built from named input).
    vertex_names: Option<Vec<String>>,
    #[serde(skip)]
    name_lookup: HashMap<String, VertexId>,
}

impl LabeledGraph {
    /// Builds a graph from an edge list over `vertex_count` vertices.
    ///
    /// Parallel edges and self loops are kept (the datasets of the paper
    /// contain both). Edges referring to vertices `>= vertex_count` panic.
    pub fn from_edges(
        vertex_count: usize,
        edges: &[Edge],
        labels: LabelInterner,
        vertex_names: Option<Vec<String>>,
    ) -> Self {
        assert!(
            vertex_count <= u32::MAX as usize,
            "vertex count exceeds u32 range"
        );
        if let Some(names) = &vertex_names {
            assert_eq!(names.len(), vertex_count, "one name per vertex required");
        }
        let mut out_degree = vec![0u32; vertex_count];
        let mut in_degree = vec![0u32; vertex_count];
        for e in edges {
            assert!(
                (e.source as usize) < vertex_count,
                "edge source out of range"
            );
            assert!(
                (e.target as usize) < vertex_count,
                "edge target out of range"
            );
            out_degree[e.source as usize] += 1;
            in_degree[e.target as usize] += 1;
        }
        let out_offsets = prefix_sum(&out_degree);
        let in_offsets = prefix_sum(&in_degree);

        let edge_count = edges.len();
        let mut out_targets = vec![0 as VertexId; edge_count];
        let mut out_labels = vec![Label(0); edge_count];
        let mut in_sources = vec![0 as VertexId; edge_count];
        let mut in_labels = vec![Label(0); edge_count];
        let mut out_cursor: Vec<u32> = out_offsets[..vertex_count].to_vec();
        let mut in_cursor: Vec<u32> = in_offsets[..vertex_count].to_vec();
        for e in edges {
            let oc = &mut out_cursor[e.source as usize];
            out_targets[*oc as usize] = e.target;
            out_labels[*oc as usize] = e.label;
            *oc += 1;
            let ic = &mut in_cursor[e.target as usize];
            in_sources[*ic as usize] = e.source;
            in_labels[*ic as usize] = e.label;
            *ic += 1;
        }

        let name_lookup = vertex_names
            .as_ref()
            .map(|names| {
                names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (n.clone(), i as VertexId))
                    .collect()
            })
            .unwrap_or_default();

        LabeledGraph {
            vertex_count,
            out_offsets,
            out_targets,
            out_labels,
            in_offsets,
            in_sources,
            in_labels,
            labels,
            vertex_names,
            name_lookup,
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of edges `|E|` (parallel edges counted individually).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Number of distinct edge labels `|L|`.
    #[inline]
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The label interner of this graph.
    #[inline]
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.vertex_count as VertexId
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices().flat_map(move |v| {
            self.out_edges(v)
                .iter()
                .map(move |(target, label)| Edge::new(v, label, target))
        })
    }

    /// Outgoing edges of `v` as `(target, label)` pairs.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> OutEdges<'_> {
        let lo = self.out_offsets[v as usize] as usize;
        let hi = self.out_offsets[v as usize + 1] as usize;
        OutEdges {
            targets: &self.out_targets[lo..hi],
            labels: &self.out_labels[lo..hi],
        }
    }

    /// Incoming edges of `v` as `(source, label)` pairs.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> OutEdges<'_> {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        OutEdges {
            targets: &self.in_sources[lo..hi],
            labels: &self.in_labels[lo..hi],
        }
    }

    /// Out-degree of `v` (the paper's `|out(v)|` counts edges).
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        (self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as usize
    }

    /// Whether the graph contains the exact edge `(source, label, target)`.
    pub fn has_edge(&self, source: VertexId, label: Label, target: VertexId) -> bool {
        self.out_edges(source)
            .iter()
            .any(|(t, l)| t == target && l == label)
    }

    /// Resolves a vertex name to its id, when the graph was built with names.
    pub fn vertex_id(&self, name: &str) -> Option<VertexId> {
        self.name_lookup.get(name).copied()
    }

    /// Returns the name of vertex `v`, when the graph was built with names.
    pub fn vertex_name(&self, v: VertexId) -> Option<&str> {
        self.vertex_names
            .as_ref()
            .and_then(|names| names.get(v as usize))
            .map(String::as_str)
    }

    /// Rebuilds lookup maps after deserialization.
    pub fn rebuild_lookups(&mut self) {
        self.labels.rebuild_lookup();
        self.name_lookup = self
            .vertex_names
            .as_ref()
            .map(|names| {
                names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (n.clone(), i as VertexId))
                    .collect()
            })
            .unwrap_or_default();
    }

    /// Approximate in-memory size of the adjacency structures in bytes.
    ///
    /// Used when reporting the footprint of graphs and baseline indexes.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.out_offsets.len() * size_of::<u32>()
            + self.in_offsets.len() * size_of::<u32>()
            + self.out_targets.len() * (size_of::<VertexId>() + size_of::<Label>())
            + self.in_sources.len() * (size_of::<VertexId>() + size_of::<Label>())
    }

    /// Average degree `|E| / |V|`.
    pub fn average_degree(&self) -> f64 {
        if self.vertex_count == 0 {
            0.0
        } else {
            self.edge_count() as f64 / self.vertex_count as f64
        }
    }
}

impl Deserialize for LabeledGraph {
    /// Reconstructs the graph and rebuilds the skipped lookup maps, so a
    /// deserialized graph is immediately fully functional (no
    /// [`LabeledGraph::rebuild_lookups`] call required).
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a map for LabeledGraph"))?;
        let mut graph = LabeledGraph {
            vertex_count: serde::map_field(entries, "vertex_count", "LabeledGraph")?,
            out_offsets: serde::map_field(entries, "out_offsets", "LabeledGraph")?,
            out_targets: serde::map_field(entries, "out_targets", "LabeledGraph")?,
            out_labels: serde::map_field(entries, "out_labels", "LabeledGraph")?,
            in_offsets: serde::map_field(entries, "in_offsets", "LabeledGraph")?,
            in_sources: serde::map_field(entries, "in_sources", "LabeledGraph")?,
            in_labels: serde::map_field(entries, "in_labels", "LabeledGraph")?,
            labels: serde::map_field(entries, "labels", "LabeledGraph")?,
            vertex_names: serde::map_field(entries, "vertex_names", "LabeledGraph")?,
            name_lookup: HashMap::new(),
        };
        // Structural sanity: the CSR arrays must be mutually consistent,
        // otherwise adjacency accessors would panic or read garbage later.
        // Checked: array lengths, offset monotonicity, neighbour and label
        // ids in range, and one name per vertex when names are present.
        let n = graph.vertex_count;
        let label_count = graph.labels.len();
        let consistent = graph.out_offsets.len() == n + 1
            && graph.in_offsets.len() == n + 1
            && graph.out_offsets.last().copied() == Some(graph.out_targets.len() as u32)
            && graph.in_offsets.last().copied() == Some(graph.in_sources.len() as u32)
            && graph.out_labels.len() == graph.out_targets.len()
            && graph.in_labels.len() == graph.in_sources.len()
            && graph.out_offsets.windows(2).all(|w| w[0] <= w[1])
            && graph.in_offsets.windows(2).all(|w| w[0] <= w[1])
            && graph.out_targets.iter().all(|&t| (t as usize) < n)
            && graph.in_sources.iter().all(|&s| (s as usize) < n)
            && graph.out_labels.iter().all(|l| l.index() < label_count)
            && graph.in_labels.iter().all(|l| l.index() < label_count)
            && graph
                .vertex_names
                .as_ref()
                .is_none_or(|names| names.len() == n);
        if !consistent {
            return Err(serde::Error::custom(
                "inconsistent CSR arrays in serialized LabeledGraph",
            ));
        }
        graph.rebuild_lookups();
        Ok(graph)
    }
}

/// Borrowed view over the adjacency of one vertex in one direction.
///
/// Yields `(neighbour, label)` pairs; for [`LabeledGraph::out_edges`] the
/// neighbour is the edge target, for [`LabeledGraph::in_edges`] it is the
/// edge source.
#[derive(Copy, Clone, Debug)]
pub struct OutEdges<'a> {
    targets: &'a [VertexId],
    labels: &'a [Label],
}

impl<'a> OutEdges<'a> {
    /// Number of edges in this adjacency list.
    #[inline]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the adjacency list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Iterates over `(neighbour, label)` pairs.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, Label)> + 'a {
        self.targets
            .iter()
            .copied()
            .zip(self.labels.iter().copied())
    }

    /// Random access to the `i`-th `(neighbour, label)` pair.
    #[inline]
    pub fn get(&self, i: usize) -> Option<(VertexId, Label)> {
        match (self.targets.get(i), self.labels.get(i)) {
            (Some(&t), Some(&l)) => Some((t, l)),
            _ => None,
        }
    }
}

impl<'a> IntoIterator for OutEdges<'a> {
    type Item = (VertexId, Label);
    type IntoIter = std::iter::Zip<
        std::iter::Copied<std::slice::Iter<'a, VertexId>>,
        std::iter::Copied<std::slice::Iter<'a, Label>>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.targets
            .iter()
            .copied()
            .zip(self.labels.iter().copied())
    }
}

fn prefix_sum(degrees: &[u32]) -> Vec<u32> {
    let mut offsets = Vec::with_capacity(degrees.len() + 1);
    let mut acc = 0u32;
    offsets.push(0);
    for &d in degrees {
        acc = acc
            .checked_add(d)
            // rlc-analyze: allow(panic-free-library) — the CSR format caps offsets at u32 by design; a graph with more than 2^32 edges is unrepresentable and must fail loudly at build time
            .expect("edge count exceeds u32 range in CSR offsets");
        offsets.push(acc);
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> LabeledGraph {
        // a -x-> b -y-> d, a -y-> c -x-> d, plus a self loop d -x-> d
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "x", "b");
        b.add_edge_named("b", "y", "d");
        b.add_edge_named("a", "y", "c");
        b.add_edge_named("c", "x", "d");
        b.add_edge_named("d", "x", "d");
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.label_count(), 2);
        assert!((g.average_degree() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn adjacency_is_consistent_between_directions() {
        let g = diamond();
        for e in g.edges() {
            assert!(g.has_edge(e.source, e.label, e.target));
            assert!(g
                .in_edges(e.target)
                .iter()
                .any(|(s, l)| s == e.source && l == e.label));
        }
        let total_in: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        let total_out: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        assert_eq!(total_in, g.edge_count());
        assert_eq!(total_out, g.edge_count());
    }

    #[test]
    fn degrees_and_names() {
        let g = diamond();
        let a = g.vertex_id("a").unwrap();
        let d = g.vertex_id("d").unwrap();
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.in_degree(d), 3);
        assert_eq!(g.out_degree(d), 1);
        assert_eq!(g.vertex_name(a), Some("a"));
        assert_eq!(g.vertex_id("zz"), None);
    }

    #[test]
    fn self_loops_and_parallel_edges_are_preserved() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("u", "x", "v");
        b.add_edge_named("u", "x", "v");
        b.add_edge_named("u", "y", "u");
        let g = b.build();
        assert_eq!(g.edge_count(), 3);
        let u = g.vertex_id("u").unwrap();
        assert_eq!(g.out_degree(u), 3);
    }

    #[test]
    fn serde_round_trip_preserves_structure() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: LabeledGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        let edges_a: Vec<_> = g.edges().collect();
        let edges_b: Vec<_> = back.edges().collect();
        assert_eq!(edges_a, edges_b);
    }

    #[test]
    fn deserialization_is_self_healing() {
        // No rebuild_lookups() call: name and label lookups must work
        // straight out of from_str.
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: LabeledGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.vertex_id("a"), g.vertex_id("a"));
        assert_eq!(back.vertex_id("d"), g.vertex_id("d"));
        assert_eq!(back.labels().resolve("x"), g.labels().resolve("x"));
        assert_eq!(back.vertex_name(back.vertex_id("b").unwrap()), Some("b"));
    }

    #[test]
    fn inconsistent_serialized_graph_is_rejected() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        // Corrupt the vertex count: the CSR offsets no longer match.
        let corrupted = json.replacen("\"vertex_count\":4", "\"vertex_count\":3", 1);
        assert_ne!(corrupted, json);
        assert!(serde_json::from_str::<LabeledGraph>(&corrupted).is_err());
    }

    #[test]
    fn non_monotonic_offsets_and_out_of_range_ids_are_rejected() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        // Sanity: the uncorrupted form round-trips.
        assert!(serde_json::from_str::<LabeledGraph>(&json).is_ok());
        // Swap two interior out_offsets values so the array stays the same
        // length and keeps its final value but is no longer monotone.
        let offsets: Vec<u32> = (0..=g.vertex_count())
            .map(|v| {
                if v == 0 {
                    0
                } else {
                    (0..v).map(|u| g.out_degree(u as VertexId) as u32).sum()
                }
            })
            .collect();
        let original = serde_json::to_string(&offsets).unwrap();
        let mut shuffled = offsets.clone();
        shuffled.swap(1, 2);
        if shuffled != offsets {
            let corrupted = json.replacen(
                &format!("\"out_offsets\":{original}"),
                &format!(
                    "\"out_offsets\":{}",
                    serde_json::to_string(&shuffled).unwrap()
                ),
                1,
            );
            assert_ne!(corrupted, json, "corruption must change the payload");
            assert!(serde_json::from_str::<LabeledGraph>(&corrupted).is_err());
        }
        // Out-of-range target and label ids must also be rejected (replace
        // the first value in place so every length check still passes).
        for key in ["\"out_targets\":[", "\"out_labels\":["] {
            let start = json.find(key).unwrap() + key.len();
            let end = start
                + json[start..]
                    .find([',', ']'])
                    .expect("diamond has out edges");
            let corrupted = format!("{}99{}", &json[..start], &json[end..]);
            assert!(
                serde_json::from_str::<LabeledGraph>(&corrupted).is_err(),
                "{key} corruption must be rejected"
            );
        }
        // A name list shorter than the vertex count must be rejected.
        let corrupted = json.replacen("\"a\",", "", 1);
        assert_ne!(corrupted, json);
        assert!(serde_json::from_str::<LabeledGraph>(&corrupted).is_err());
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = LabeledGraph::from_edges(0, &[], LabelInterner::new(), None);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertices().count(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn vertex_without_edges_has_empty_adjacency() {
        let g = LabeledGraph::from_edges(3, &[], LabelInterner::anonymous(1), None);
        for v in g.vertices() {
            assert!(g.out_edges(v).is_empty());
            assert!(g.in_edges(v).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_out_of_range_panics() {
        let edges = [Edge::new(0, Label(0), 5)];
        let _ = LabeledGraph::from_edges(2, &edges, LabelInterner::anonymous(1), None);
    }

    #[test]
    fn memory_bytes_is_positive_for_nonempty_graph() {
        let g = diamond();
        assert!(g.memory_bytes() > 0);
    }
}
