//! The two illustrative graphs of the paper, used across tests and examples.
//!
//! * [`fig1_graph`] — the interleaved social / professional / financial
//!   network of Fig. 1 (persons, accounts and transaction events with the
//!   labels `knows`, `worksFor`, `holds`, `debits`, `credits`);
//! * [`fig2_graph`] — the six-vertex, three-label graph of Fig. 2 used as the
//!   running example for the RLC index (Table II).

use crate::builder::GraphBuilder;
use crate::graph::LabeledGraph;

/// Builds the social/professional/financial network of the paper's Fig. 1.
///
/// The graph is reconstructed from the paper's textual description: it
/// contains the fraud-detection path
/// `A14 -debits-> E15 -credits-> A17 -debits-> E18 -credits-> A19`
/// (so `Q1(A14, A19, (debits, credits)+)` is true), no path from `P10` to
/// `P13` matching `(knows, knows, worksFor)+` (so `Q2` is false), a
/// `knows`-cycle between `P11` and `P12`, and both a length-3 and a length-4
/// all-`knows` path from `P10` to `P16`.
pub fn fig1_graph() -> LabeledGraph {
    let mut b = GraphBuilder::new();
    // Social / professional layer.
    b.add_edge_named("P10", "knows", "P11");
    b.add_edge_named("P11", "knows", "P12");
    b.add_edge_named("P12", "knows", "P11");
    b.add_edge_named("P11", "worksFor", "P12");
    b.add_edge_named("P12", "knows", "P13");
    b.add_edge_named("P12", "knows", "P16");
    b.add_edge_named("P13", "knows", "P16");
    b.add_edge_named("P13", "worksFor", "P16");
    // Account ownership.
    b.add_edge_named("P11", "holds", "A14");
    b.add_edge_named("P16", "holds", "A19");
    // Financial transaction layer.
    b.add_edge_named("A14", "debits", "E15");
    b.add_edge_named("E15", "credits", "A17");
    b.add_edge_named("A17", "debits", "E18");
    b.add_edge_named("E18", "credits", "A19");
    b.build()
}

/// Builds the running-example graph of the paper's Fig. 2 (vertices `v1`–`v6`,
/// labels `l1`–`l3`).
///
/// The edge set is reconstructed from the worked examples in the paper
/// (Examples 4–6 and Table II): it contains exactly the paths those examples
/// rely on, and the IN-OUT ordering of its vertices is
/// `(v1, v3, v2, v4, v5, v6)` as stated in §V-B.
pub fn fig2_graph() -> LabeledGraph {
    let mut b = GraphBuilder::new();
    // Intern vertices in id order v1..v6 so that dense ids match the paper.
    for v in ["v1", "v2", "v3", "v4", "v5", "v6"] {
        b.add_vertex(v);
    }
    b.add_edge_named("v1", "l1", "v2");
    b.add_edge_named("v1", "l2", "v3");
    b.add_edge_named("v2", "l1", "v5");
    b.add_edge_named("v2", "l2", "v5");
    b.add_edge_named("v3", "l1", "v2");
    b.add_edge_named("v3", "l1", "v6");
    b.add_edge_named("v3", "l2", "v1");
    b.add_edge_named("v3", "l2", "v4");
    b.add_edge_named("v4", "l1", "v1");
    b.add_edge_named("v4", "l3", "v6");
    b.add_edge_named("v5", "l1", "v1");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_contains_fraud_path() {
        let g = fig1_graph();
        assert_eq!(g.label_count(), 5);
        let debits = g.labels().resolve("debits").unwrap();
        let credits = g.labels().resolve("credits").unwrap();
        let a14 = g.vertex_id("A14").unwrap();
        let e15 = g.vertex_id("E15").unwrap();
        let a17 = g.vertex_id("A17").unwrap();
        let e18 = g.vertex_id("E18").unwrap();
        let a19 = g.vertex_id("A19").unwrap();
        assert!(g.has_edge(a14, debits, e15));
        assert!(g.has_edge(e15, credits, a17));
        assert!(g.has_edge(a17, debits, e18));
        assert!(g.has_edge(e18, credits, a19));
    }

    #[test]
    fn fig1_has_knows_cycle() {
        let g = fig1_graph();
        let knows = g.labels().resolve("knows").unwrap();
        let p11 = g.vertex_id("P11").unwrap();
        let p12 = g.vertex_id("P12").unwrap();
        assert!(g.has_edge(p11, knows, p12));
        assert!(g.has_edge(p12, knows, p11));
    }

    #[test]
    fn fig2_shape_matches_paper() {
        let g = fig2_graph();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 11);
        assert_eq!(g.label_count(), 3);
        // The path of Example 4: v3 -l2-> v4 -l1-> v1 -l2-> v3 -l1-> v6.
        let l1 = g.labels().resolve("l1").unwrap();
        let l2 = g.labels().resolve("l2").unwrap();
        let v1 = g.vertex_id("v1").unwrap();
        let v3 = g.vertex_id("v3").unwrap();
        let v4 = g.vertex_id("v4").unwrap();
        let v6 = g.vertex_id("v6").unwrap();
        assert!(g.has_edge(v3, l2, v4));
        assert!(g.has_edge(v4, l1, v1));
        assert!(g.has_edge(v1, l2, v3));
        assert!(g.has_edge(v3, l1, v6));
    }

    #[test]
    fn fig2_in_out_ordering_matches_paper() {
        // The paper states the IN-OUT order (descending (|out|+1)(|in|+1)) is
        // (v1, v3, v2, v4, v5, v6).
        let g = fig2_graph();
        let score = |name: &str| {
            let v = g.vertex_id(name).unwrap();
            (g.out_degree(v) + 1) * (g.in_degree(v) + 1)
        };
        assert!(score("v1") > score("v3"));
        assert!(score("v3") > score("v2"));
        assert!(score("v2") > score("v4"));
        assert!(score("v4") >= score("v5"));
        assert!(score("v5") > score("v6"));
    }
}
