//! Reusable per-thread search state for the online product traversals.
//!
//! Every BFS/BiBFS/DFS evaluation explores `(vertex, NFA state)` pairs. A
//! naive implementation allocates a fresh hash set and queue per query; on a
//! batch of thousands of queries those allocations dominate. This module
//! provides [`ProductScratch`] — epoch-stamped visited tables plus reusable
//! frontier containers sized to `|V| × |Q|` — and a thread-local instance so
//! the [`crate::engine`] adapters evaluate whole batches without per-query
//! allocation in the steady state (containers grow once per thread, then are
//! reused; epoch bumps make clearing O(1)).

use rlc_graph::VertexId;
use std::cell::RefCell;
use std::collections::VecDeque;

/// Reusable search state for product-graph traversals.
///
/// A "slot" is the dense encoding `vertex * state_count + state` of a
/// product state. The two stamp tables implement two independent visited
/// sets (forward and backward, for bidirectional search); a slot is visited
/// in the current traversal iff its stamp equals the current epoch, so
/// clearing between queries is a single counter increment.
#[derive(Debug, Default)]
pub struct ProductScratch {
    forward_stamps: Vec<u32>,
    backward_stamps: Vec<u32>,
    epoch: u32,
    /// BFS work queue.
    pub(crate) queue: VecDeque<(VertexId, u32)>,
    /// DFS work stack.
    pub(crate) stack: Vec<(VertexId, u32)>,
    /// Frontier buffers for bidirectional search, reused across queries.
    frontier_buffers: Vec<Vec<(VertexId, u32)>>,
}

impl ProductScratch {
    /// Creates empty scratch state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the scratch for a traversal over `slots` product states:
    /// bumps the epoch (O(1) clear of both visited sets), grows the forward
    /// stamp table if needed, and clears the work containers.
    ///
    /// Only the forward table is sized here — BFS and DFS never touch the
    /// backward table, so growing it eagerly would double the footprint of
    /// every unidirectional traversal. Bidirectional search additionally
    /// calls [`Self::ensure_backward`].
    pub(crate) fn begin(&mut self, slots: usize) {
        if self.forward_stamps.len() < slots {
            self.forward_stamps.resize(slots, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: reset the tables once every 2^32 queries.
            self.forward_stamps.iter_mut().for_each(|s| *s = 0);
            self.backward_stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.queue.clear();
        self.stack.clear();
    }

    /// Grows the backward stamp table to cover `slots` product states; must
    /// be called (after [`Self::begin`]) before using the backward visited
    /// set.
    pub(crate) fn ensure_backward(&mut self, slots: usize) {
        if self.backward_stamps.len() < slots {
            self.backward_stamps.resize(slots, 0);
        }
    }

    /// Marks a slot visited in the forward set; returns whether it was
    /// already visited.
    #[inline]
    pub(crate) fn mark_forward(&mut self, slot: usize) -> bool {
        let stamp = &mut self.forward_stamps[slot];
        let was = *stamp == self.epoch;
        *stamp = self.epoch;
        was
    }

    /// Whether a slot is visited in the forward set.
    #[inline]
    pub(crate) fn forward_visited(&self, slot: usize) -> bool {
        self.forward_stamps[slot] == self.epoch
    }

    /// Marks a slot visited in the backward set; returns whether it was
    /// already visited.
    #[inline]
    pub(crate) fn mark_backward(&mut self, slot: usize) -> bool {
        let stamp = &mut self.backward_stamps[slot];
        let was = *stamp == self.epoch;
        *stamp = self.epoch;
        was
    }

    /// Whether a slot is visited in the backward set.
    #[inline]
    pub(crate) fn backward_visited(&self, slot: usize) -> bool {
        self.backward_stamps[slot] == self.epoch
    }

    /// Hands out a cleared frontier buffer (capacity retained from earlier
    /// traversals). Return it with [`Self::recycle_frontier`].
    pub(crate) fn take_frontier(&mut self) -> Vec<(VertexId, u32)> {
        let mut buffer = self.frontier_buffers.pop().unwrap_or_default();
        buffer.clear();
        buffer
    }

    /// Returns a frontier buffer for reuse by later traversals.
    pub(crate) fn recycle_frontier(&mut self, buffer: Vec<(VertexId, u32)>) {
        self.frontier_buffers.push(buffer);
    }
}

thread_local! {
    static SCRATCH: RefCell<ProductScratch> = RefCell::new(ProductScratch::new());
}

/// Runs `f` with this thread's [`ProductScratch`].
///
/// The traversal entry points route through here, so batch evaluation —
/// which fans queries out across rayon workers — reuses one scratch per
/// worker thread.
pub fn with_scratch<R>(f: impl FnOnce(&mut ProductScratch) -> R) -> R {
    SCRATCH.with(|scratch| f(&mut scratch.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bump_clears_visited_sets() {
        let mut scratch = ProductScratch::new();
        scratch.begin(10);
        scratch.ensure_backward(10);
        assert!(!scratch.mark_forward(3));
        assert!(scratch.mark_forward(3));
        assert!(scratch.forward_visited(3));
        assert!(!scratch.backward_visited(3));
        scratch.begin(10);
        assert!(!scratch.forward_visited(3));
        assert!(!scratch.mark_forward(3));
    }

    #[test]
    fn stamp_tables_grow_on_demand() {
        let mut scratch = ProductScratch::new();
        scratch.begin(4);
        scratch.mark_forward(3);
        scratch.begin(100);
        assert!(!scratch.forward_visited(99));
        scratch.ensure_backward(100);
        scratch.mark_backward(99);
        assert!(scratch.backward_visited(99));
    }

    #[test]
    fn backward_table_grows_only_when_requested() {
        // BFS/DFS traversals must not pay for the backward table.
        let mut scratch = ProductScratch::new();
        scratch.begin(1000);
        assert_eq!(scratch.forward_stamps.len(), 1000);
        assert!(scratch.backward_stamps.is_empty());
        scratch.ensure_backward(1000);
        assert_eq!(scratch.backward_stamps.len(), 1000);
    }

    #[test]
    fn frontier_buffers_are_recycled() {
        let mut scratch = ProductScratch::new();
        let mut buffer = scratch.take_frontier();
        buffer.push((1, 0));
        buffer.reserve(1000);
        let capacity = buffer.capacity();
        scratch.recycle_frontier(buffer);
        let reused = scratch.take_frontier();
        assert!(reused.is_empty());
        assert_eq!(reused.capacity(), capacity);
    }

    #[test]
    fn thread_local_scratch_is_accessible() {
        let sum = with_scratch(|scratch| {
            scratch.begin(8);
            scratch.mark_forward(1);
            scratch.forward_visited(1) as usize
        });
        assert_eq!(sum, 1);
    }
}
