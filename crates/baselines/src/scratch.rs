//! Reusable per-thread search state for the online product traversals.
//!
//! Every BFS/BiBFS/DFS evaluation explores `(vertex, NFA state)` pairs. A
//! naive implementation allocates a fresh hash set and queue per query; on a
//! batch of thousands of queries those allocations dominate. This module
//! provides [`ProductScratch`] — bit-parallel visited sets
//! ([`rlc_core::kernel::FrontierSet`]) plus reusable frontier containers
//! sized to `|V| × |Q|` — and a thread-local instance so the
//! [`crate::engine`] adapters evaluate whole batches without per-query
//! allocation in the steady state (containers grow once per thread, then
//! are reused; epoch bumps make clearing O(1)).
//!
//! The visited sets used to be scalar `u32` stamp tables (one stamp per
//! product slot). They are now dense `u64` bitset words with word-granular
//! epoch stamps: 1 bit per slot instead of 32, and set operations (the
//! BiBFS frontier meet in particular) run through the runtime-dispatched
//! SIMD kernels of [`rlc_core::kernel`].

use rlc_core::kernel::FrontierSet;
use rlc_graph::VertexId;
use std::cell::RefCell;
use std::collections::VecDeque;

/// Reusable search state for product-graph traversals.
///
/// A "slot" is the dense encoding `vertex * state_count + state` of a
/// product state. The two bitsets implement two independent visited sets
/// (forward and backward, for bidirectional search); clearing between
/// queries is an epoch bump (see [`FrontierSet`]).
#[derive(Debug, Default)]
pub struct ProductScratch {
    forward: FrontierSet,
    backward: FrontierSet,
    /// BFS work queue.
    pub(crate) queue: VecDeque<(VertexId, u32)>,
    /// DFS work stack.
    pub(crate) stack: Vec<(VertexId, u32)>,
    /// Frontier buffers for bidirectional search, reused across queries.
    frontier_buffers: Vec<Vec<(VertexId, u32)>>,
}

impl ProductScratch {
    /// Creates empty scratch state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the scratch for a traversal over `slots` product states:
    /// bumps both epochs (O(1) clear of both visited sets), grows the
    /// forward bitset if needed, and clears the work containers.
    ///
    /// Only the forward set is sized here — BFS and DFS never touch the
    /// backward set, so growing it eagerly would double the footprint of
    /// every unidirectional traversal. Bidirectional search additionally
    /// calls [`Self::ensure_backward`].
    pub(crate) fn begin(&mut self, slots: usize) {
        self.forward.begin(slots);
        self.backward.begin(0);
        self.queue.clear();
        self.stack.clear();
    }

    /// Grows the backward bitset to cover `slots` product states; must be
    /// called (after [`Self::begin`]) before using the backward visited
    /// set.
    pub(crate) fn ensure_backward(&mut self, slots: usize) {
        self.backward.ensure(slots);
    }

    /// Marks a slot visited in the forward set; returns whether it was
    /// already visited.
    #[inline]
    pub(crate) fn mark_forward(&mut self, slot: usize) -> bool {
        self.forward.test_and_set(slot)
    }

    /// Whether a slot is visited in the forward set. The traversals only
    /// ever mark-and-test ([`Self::mark_forward`]); direct membership reads
    /// remain for the unit tests.
    #[cfg(test)]
    fn forward_visited(&self, slot: usize) -> bool {
        self.forward.contains(slot)
    }

    /// Marks a slot visited in the backward set; returns whether it was
    /// already visited.
    #[inline]
    pub(crate) fn mark_backward(&mut self, slot: usize) -> bool {
        self.backward.test_and_set(slot)
    }

    /// Whether a slot is visited in the backward set; test-only, like
    /// [`Self::forward_visited`].
    #[cfg(test)]
    fn backward_visited(&self, slot: usize) -> bool {
        self.backward.contains(slot)
    }

    /// Whether the forward and backward visited sets share a product
    /// state — the bidirectional-search meet test, one word-parallel
    /// intersection instead of a scalar probe per generated state.
    #[inline]
    pub(crate) fn frontiers_meet(&self) -> bool {
        self.forward.intersects(&self.backward)
    }

    /// Hands out a cleared frontier buffer (capacity retained from earlier
    /// traversals). Return it with [`Self::recycle_frontier`].
    pub(crate) fn take_frontier(&mut self) -> Vec<(VertexId, u32)> {
        let mut buffer = self.frontier_buffers.pop().unwrap_or_default();
        buffer.clear();
        buffer
    }

    /// Returns a frontier buffer for reuse by later traversals.
    pub(crate) fn recycle_frontier(&mut self, buffer: Vec<(VertexId, u32)>) {
        self.frontier_buffers.push(buffer);
    }

    /// Resident heap footprint in bytes: both visited bitsets (word +
    /// stamp tables) plus the work containers. Used to price the traversal
    /// scratch in stats surfaces.
    pub fn memory_bytes(&self) -> usize {
        let pair = std::mem::size_of::<(VertexId, u32)>();
        self.forward.memory_bytes()
            + self.backward.memory_bytes()
            + self.queue.capacity() * pair
            + self.stack.capacity() * pair
            + self
                .frontier_buffers
                .iter()
                .map(|b| b.capacity() * pair)
                .sum::<usize>()
    }

    /// Sets both visited-set epoch counters directly, so tests can drive
    /// the wraparound path without 2^32 traversals. Not part of the API.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.forward.force_epoch(epoch);
        self.backward.force_epoch(epoch);
    }
}

thread_local! {
    static SCRATCH: RefCell<ProductScratch> = RefCell::new(ProductScratch::new());
}

/// Runs `f` with this thread's [`ProductScratch`].
///
/// The traversal entry points route through here, so batch evaluation —
/// which fans queries out across rayon workers — reuses one scratch per
/// worker thread.
pub fn with_scratch<R>(f: impl FnOnce(&mut ProductScratch) -> R) -> R {
    SCRATCH.with(|scratch| f(&mut scratch.borrow_mut()))
}

/// Resident bytes of the calling thread's [`ProductScratch`] — the word
/// tables this thread's traversals have grown. Lets callers price the
/// per-thread search scratch alongside prepared artifacts.
pub fn thread_scratch_bytes() -> usize {
    with_scratch(|scratch| scratch.memory_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bump_clears_visited_sets() {
        let mut scratch = ProductScratch::new();
        scratch.begin(10);
        scratch.ensure_backward(10);
        assert!(!scratch.mark_forward(3));
        assert!(scratch.mark_forward(3));
        assert!(scratch.forward_visited(3));
        assert!(!scratch.backward_visited(3));
        scratch.begin(10);
        assert!(!scratch.forward_visited(3));
        assert!(!scratch.mark_forward(3));
    }

    #[test]
    fn stamp_tables_grow_on_demand() {
        let mut scratch = ProductScratch::new();
        scratch.begin(4);
        scratch.mark_forward(3);
        scratch.begin(100);
        assert!(!scratch.forward_visited(99));
        scratch.ensure_backward(100);
        scratch.mark_backward(99);
        assert!(scratch.backward_visited(99));
    }

    #[test]
    fn epoch_wraparound_clears_instead_of_stale_matching() {
        // Regression: after 2^32 `begin` calls the u32 epoch counter wraps
        // and restarts at 1 — the same value that stamped words live in
        // the very first traversal. The wrap must reset the stamp tables,
        // or bits from epoch 1 of the previous era would resurrect.
        let mut scratch = ProductScratch::new();
        scratch.begin(256); // epoch 1
        scratch.ensure_backward(256);
        scratch.mark_forward(7);
        scratch.mark_forward(200);
        scratch.mark_backward(8);
        // Fast-forward both sets to the eve of the wrap, then cross it.
        scratch.force_epoch(u32::MAX);
        scratch.begin(256);
        scratch.ensure_backward(256);
        assert!(
            !scratch.forward_visited(7) && !scratch.forward_visited(200),
            "forward bits from the previous epoch era must be cleared"
        );
        assert!(
            !scratch.backward_visited(8),
            "backward bits from the previous epoch era must be cleared"
        );
        // And the wrapped-around scratch must still work normally.
        assert!(!scratch.mark_forward(7));
        assert!(scratch.mark_forward(7));
        scratch.begin(256);
        assert!(!scratch.forward_visited(7));
    }

    #[test]
    fn frontier_meet_reflects_shared_slots() {
        let mut scratch = ProductScratch::new();
        scratch.begin(500);
        scratch.ensure_backward(500);
        scratch.mark_forward(400);
        scratch.mark_backward(401);
        assert!(!scratch.frontiers_meet());
        scratch.mark_backward(400);
        assert!(scratch.frontiers_meet());
        scratch.begin(500);
        assert!(!scratch.frontiers_meet());
    }

    #[test]
    fn frontier_buffers_are_recycled() {
        let mut scratch = ProductScratch::new();
        let mut buffer = scratch.take_frontier();
        buffer.push((1, 0));
        buffer.reserve(1000);
        let capacity = buffer.capacity();
        scratch.recycle_frontier(buffer);
        let reused = scratch.take_frontier();
        assert!(reused.is_empty());
        assert_eq!(reused.capacity(), capacity);
    }

    #[test]
    fn scratch_memory_is_priced() {
        let mut scratch = ProductScratch::new();
        assert_eq!(scratch.memory_bytes(), 0);
        scratch.begin(10_000);
        let unidirectional = scratch.memory_bytes();
        assert!(unidirectional > 0);
        scratch.ensure_backward(10_000);
        assert!(scratch.memory_bytes() > unidirectional);
    }

    #[test]
    fn thread_local_scratch_is_accessible() {
        let sum = with_scratch(|scratch| {
            scratch.begin(8);
            scratch.mark_forward(1);
            scratch.forward_visited(1) as usize
        });
        assert_eq!(sum, 1);
        assert!(thread_scratch_bytes() > 0);
    }
}
