//! Depth-first online traversal (mentioned in §VI as the same-complexity
//! alternative to BFS).
//!
//! Like the other traversal baselines, the visited table and the work stack
//! live in the per-thread [`crate::scratch::ProductScratch`].

use crate::nfa::Nfa;
use crate::scratch::{with_scratch, ProductScratch};
use rlc_core::{Query, RlcQuery};
use rlc_graph::{LabeledGraph, VertexId};

/// Answers an RLC query by iterative depth-first search over the
/// graph–automaton product.
pub fn dfs_query(graph: &LabeledGraph, query: &RlcQuery) -> bool {
    let nfa = Nfa::kleene_plus(&query.constraint);
    dfs_product(graph, &nfa, query.source, query.target)
}

/// Answers an extended concatenation query (`B1+ ∘ … ∘ Bm+`) by product DFS
/// with the automaton built for the whole concatenation.
pub fn dfs_concat_query(graph: &LabeledGraph, query: &Query) -> bool {
    let nfa = Nfa::concatenation(query.constraint().blocks());
    dfs_product(graph, &nfa, query.source, query.target)
}

/// Product-graph DFS.
pub fn dfs_product(graph: &LabeledGraph, nfa: &Nfa, source: VertexId, target: VertexId) -> bool {
    with_scratch(|scratch| dfs_product_scratch(graph, nfa, source, target, scratch))
}

/// Product DFS over explicit scratch state.
fn dfs_product_scratch(
    graph: &LabeledGraph,
    nfa: &Nfa,
    source: VertexId,
    target: VertexId,
    scratch: &mut ProductScratch,
) -> bool {
    let states = nfa.state_count();
    scratch.begin(graph.vertex_count() * states);
    let slot = |v: VertexId, q: usize| v as usize * states + q;
    scratch.mark_forward(slot(source, nfa.start));
    if source == target && nfa.is_accepting(nfa.start) {
        return true;
    }
    scratch.stack.push((source, nfa.start as u32));
    while let Some((v, q)) = scratch.stack.pop() {
        for (w, label) in graph.out_edges(v) {
            for q_next in nfa.next(q as usize, label) {
                if scratch.mark_forward(slot(w, q_next)) {
                    continue;
                }
                if w == target && nfa.is_accepting(q_next) {
                    return true;
                }
                scratch.stack.push((w, q_next as u32));
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{bfs_concat_query, bfs_query};
    use rlc_core::repeats::enumerate_minimum_repeats;
    use rlc_graph::examples::{fig1_graph, fig2_graph};
    use rlc_graph::generate::{barabasi_albert, SyntheticConfig};

    #[test]
    fn fig2_example_queries() {
        let g = fig2_graph();
        let q1 = RlcQuery::from_names(&g, "v3", "v6", &["l2", "l1"]).unwrap();
        assert!(dfs_query(&g, &q1));
        let q3 = RlcQuery::from_names(&g, "v1", "v3", &["l1"]).unwrap();
        assert!(!dfs_query(&g, &q3));
    }

    #[test]
    fn agrees_with_bfs_on_ba_graph() {
        let g = barabasi_albert(&SyntheticConfig::new(80, 3.0, 3, 5));
        let all_mrs = enumerate_minimum_repeats(2, 2);
        for s in (0..g.vertex_count() as u32).step_by(9) {
            for t in (0..g.vertex_count() as u32).step_by(13) {
                for mr in &all_mrs {
                    let q = RlcQuery::new(s, t, mr.clone()).unwrap();
                    assert_eq!(bfs_query(&g, &q), dfs_query(&g, &q));
                }
            }
        }
    }

    #[test]
    fn concat_query_agrees_with_bfs() {
        let g = fig1_graph();
        let knows = g.labels().resolve("knows").unwrap();
        let holds = g.labels().resolve("holds").unwrap();
        for s in g.vertices() {
            for t in g.vertices() {
                let q = Query::concat(s, t, vec![vec![knows], vec![holds]]).unwrap();
                assert_eq!(bfs_concat_query(&g, &q), dfs_concat_query(&g, &q));
            }
        }
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 30k-vertex chain under a single label: DFS must stay iterative.
        let mut b = rlc_graph::GraphBuilder::with_capacity(30_000, 1);
        for i in 0..29_999u32 {
            b.add_edge(i, rlc_graph::Label(0), i + 1);
        }
        let g = b.build();
        let q = RlcQuery::new(0, 29_999, vec![rlc_graph::Label(0)]).unwrap();
        assert!(dfs_query(&g, &q));
    }
}
