//! # rlc-baselines
//!
//! Baseline evaluators for RLC queries, used by the paper's experimental
//! comparison (§VI) and by the test suite as ground-truth oracles:
//!
//! * [`nfa`] — construction of the (small) automata that recognise
//!   `(l1…lk)+` constraints and concatenations of such blocks;
//! * [`bfs`] — online breadth-first traversal of the graph–automaton product
//!   (the paper's "BFS" baseline);
//! * [`bibfs`] — bidirectional BFS meeting in the middle of the product
//!   (the paper's "BiBFS" baseline, also used for query-workload generation);
//! * [`dfs`] — depth-first variant (mentioned in §VI as an alternative with
//!   the same complexity as BFS);
//! * [`etc`] — the extended transitive closure: a fully materialized map from
//!   vertex pairs to the set of minimum repeats of connecting paths;
//! * [`engine`] — [`rlc_core::engine::ReachabilityEngine`] adapters for all
//!   of the above, the uniform interface the experiments and tests use;
//! * [`scratch`] — per-thread reusable traversal state backing the online
//!   baselines, so batch evaluation allocates nothing per query.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bfs;
pub mod bibfs;
pub mod dfs;
pub mod engine;
pub mod etc;
pub mod nfa;
pub mod scratch;

pub use bfs::{bfs_product_multi, bfs_query};
pub use bibfs::bibfs_query;
pub use dfs::dfs_query;
pub use engine::{online_engines, BfsEngine, BiBfsEngine, DfsEngine, EtcEngine};
pub use etc::{EtcBuildConfig, EtcIndex, EtcStats};
pub use nfa::Nfa;
