//! Automata for recursive label-concatenated constraints.
//!
//! The online baselines of the paper evaluate an RLC query by traversing the
//! product of the graph with a minimized NFA recognising the constraint
//! (§III-B). The constraints of interest are tiny — `(l1…lk)+` and
//! concatenations of such blocks — so the automaton is built directly rather
//! than via a general regex compiler.

use rlc_graph::Label;

/// A nondeterministic finite automaton over edge labels.
///
/// States are dense indices. The construction used here yields at most
/// `Σ |block_i| + 1` states, so adjacency is a plain `Vec` per state.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// The start state.
    pub start: usize,
    /// `accepting[q]` is true when `q` is an accepting state.
    pub accepting: Vec<bool>,
    /// `transitions[q]` lists `(label, successor)` pairs.
    pub transitions: Vec<Vec<(Label, usize)>>,
    /// `reverse[q]` lists `(label, predecessor)` pairs, used by the
    /// backward half of bidirectional search.
    pub reverse: Vec<Vec<(Label, usize)>>,
    /// The accepting set as dense bitset words (`state / 64` → word,
    /// `state % 64` → bit), mirroring `accepting`. The traversal hot
    /// loops test acceptance through this mask; it is priced into
    /// [`Nfa::memory_bytes`] like every other word table.
    accepting_words: Vec<u64>,
}

impl Nfa {
    /// Builds the automaton for the single-block constraint `(l1…lk)+`.
    ///
    /// The automaton has `k + 1` states: state `0` is the start, state `i`
    /// means "the last `i` labels of the current repetition have been read",
    /// and state `k` (reached after a complete repetition) is accepting and
    /// behaves like state `0` for further input.
    pub fn kleene_plus(block: &[Label]) -> Self {
        Nfa::concatenation(&[block.to_vec()])
    }

    /// Builds the automaton for `B1+ ∘ B2+ ∘ … ∘ Bm+`.
    pub fn concatenation(blocks: &[Vec<Label>]) -> Self {
        assert!(!blocks.is_empty(), "at least one block required");
        assert!(
            blocks.iter().all(|b| !b.is_empty()),
            "blocks must not be empty"
        );
        // One state per position within each block, plus a distinguished
        // "block completed" state per block.
        // Layout: block i occupies states base(i) .. base(i) + |Bi|, where
        // base(i) + j means "j labels of the current repetition of Bi read"
        // and base(i) + |Bi| is the completion state of block i.
        let mut base = Vec::with_capacity(blocks.len());
        let mut total = 0usize;
        for block in blocks {
            base.push(total);
            total += block.len() + 1;
        }
        let mut transitions: Vec<Vec<(Label, usize)>> = vec![Vec::new(); total];
        let mut accepting = vec![false; total];

        for (i, block) in blocks.iter().enumerate() {
            let b = base[i];
            let len = block.len();
            // Reading position j consumes block[j].
            for (j, &label) in block.iter().enumerate() {
                let from = b + j;
                let to = if j + 1 == len { b + len } else { b + j + 1 };
                transitions[from].push((label, to));
            }
            // The completion state can start another repetition of the same
            // block…
            let completion = b + len;
            let restart_to = if len == 1 { completion } else { b + 1 };
            transitions[completion].push((block[0], restart_to));
            // …or hand over to the next block (by mirroring the next block's
            // first transition), or accept if this is the last block.
            if i + 1 < blocks.len() {
                let next = &blocks[i + 1];
                let nb = base[i + 1];
                // Position 1 of the next block doubles as its completion
                // state when the block has a single label.
                transitions[completion].push((next[0], nb + 1));
            } else {
                accepting[completion] = true;
            }
        }
        // In the multi-block case, the completion state of the last block is
        // the only accepting state; intermediate completion states are not.
        let mut reverse: Vec<Vec<(Label, usize)>> = vec![Vec::new(); total];
        for (from, outs) in transitions.iter().enumerate() {
            for &(label, to) in outs {
                reverse[to].push((label, from));
            }
        }
        let mut accepting_words = vec![0u64; total.div_ceil(64)];
        for (q, &a) in accepting.iter().enumerate() {
            if a {
                accepting_words[q / 64] |= 1u64 << (q % 64);
            }
        }
        Nfa {
            start: 0,
            accepting,
            transitions,
            reverse,
            accepting_words,
        }
    }

    /// Whether `state` is accepting, tested against the dense word mask.
    #[inline]
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting_words[state / 64] & (1u64 << (state % 64)) != 0
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// Approximate resident heap footprint in bytes: the acceptance flags
    /// and their word mask plus both transition tables (per-state `Vec`
    /// headers and `(label, state)` pairs). Used to price prepared
    /// automata honestly in the engine layer's plan cache.
    pub fn memory_bytes(&self) -> usize {
        let pair = std::mem::size_of::<(Label, usize)>();
        let header = std::mem::size_of::<Vec<(Label, usize)>>();
        let table = |t: &[Vec<(Label, usize)>]| -> usize {
            t.iter().map(|row| header + row.len() * pair).sum()
        };
        self.accepting.len()
            + self.accepting_words.len() * std::mem::size_of::<u64>()
            + table(&self.transitions)
            + table(&self.reverse)
    }

    /// Successor states of `state` on `label`.
    pub fn next(&self, state: usize, label: Label) -> impl Iterator<Item = usize> + '_ {
        self.transitions[state]
            .iter()
            .filter(move |(l, _)| *l == label)
            .map(|&(_, to)| to)
    }

    /// Predecessor states of `state` on `label`.
    pub fn prev(&self, state: usize, label: Label) -> impl Iterator<Item = usize> + '_ {
        self.reverse[state]
            .iter()
            .filter(move |(l, _)| *l == label)
            .map(|&(_, from)| from)
    }

    /// All accepting states.
    pub fn accepting_states(&self) -> impl Iterator<Item = usize> + '_ {
        self.accepting
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(q, _)| q)
    }

    /// Runs the automaton on a complete label sequence and reports acceptance.
    ///
    /// Only used in tests and assertions — the baselines never materialize
    /// whole sequences, they traverse the product graph instead.
    pub fn accepts(&self, sequence: &[Label]) -> bool {
        let mut states = vec![self.start];
        for &label in sequence {
            let mut next: Vec<usize> = Vec::new();
            for &q in &states {
                for to in self.next(q, label) {
                    if !next.contains(&to) {
                        next.push(to);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            states = next;
        }
        states.iter().any(|&q| self.accepting[q])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(ids: &[u16]) -> Vec<Label> {
        ids.iter().map(|&i| Label(i)).collect()
    }

    #[test]
    fn single_label_plus() {
        let nfa = Nfa::kleene_plus(&seq(&[0]));
        assert!(!nfa.accepts(&[]));
        assert!(nfa.accepts(&seq(&[0])));
        assert!(nfa.accepts(&seq(&[0, 0, 0])));
        assert!(!nfa.accepts(&seq(&[0, 1])));
        assert!(!nfa.accepts(&seq(&[1])));
    }

    #[test]
    fn two_label_block_plus() {
        let nfa = Nfa::kleene_plus(&seq(&[0, 1]));
        assert!(nfa.accepts(&seq(&[0, 1])));
        assert!(nfa.accepts(&seq(&[0, 1, 0, 1])));
        assert!(!nfa.accepts(&seq(&[0, 1, 0])));
        assert!(!nfa.accepts(&seq(&[1, 0])));
        assert!(!nfa.accepts(&seq(&[0])));
        assert_eq!(nfa.state_count(), 3);
    }

    #[test]
    fn three_label_block_plus() {
        let nfa = Nfa::kleene_plus(&seq(&[0, 1, 2]));
        assert!(nfa.accepts(&seq(&[0, 1, 2])));
        assert!(nfa.accepts(&seq(&[0, 1, 2, 0, 1, 2])));
        assert!(!nfa.accepts(&seq(&[0, 1, 2, 0])));
        assert!(!nfa.accepts(&seq(&[0, 1])));
    }

    #[test]
    fn concatenation_of_two_blocks() {
        // a+ ∘ b+
        let nfa = Nfa::concatenation(&[seq(&[0]), seq(&[1])]);
        assert!(nfa.accepts(&seq(&[0, 1])));
        assert!(nfa.accepts(&seq(&[0, 0, 1, 1, 1])));
        assert!(!nfa.accepts(&seq(&[0])));
        assert!(!nfa.accepts(&seq(&[1])));
        assert!(!nfa.accepts(&seq(&[0, 1, 0])));
        assert!(!nfa.accepts(&seq(&[1, 0])));
    }

    #[test]
    fn concatenation_of_multi_label_blocks() {
        // (a b)+ ∘ (c)+
        let nfa = Nfa::concatenation(&[seq(&[0, 1]), seq(&[2])]);
        assert!(nfa.accepts(&seq(&[0, 1, 2])));
        assert!(nfa.accepts(&seq(&[0, 1, 0, 1, 2, 2])));
        assert!(!nfa.accepts(&seq(&[0, 1])));
        assert!(!nfa.accepts(&seq(&[0, 1, 0, 2])));
        assert!(!nfa.accepts(&seq(&[2])));
    }

    #[test]
    fn reverse_transitions_mirror_forward() {
        let nfa = Nfa::kleene_plus(&seq(&[0, 1]));
        for (from, outs) in nfa.transitions.iter().enumerate() {
            for &(label, to) in outs {
                assert!(nfa.prev(to, label).any(|p| p == from));
            }
        }
    }

    #[test]
    fn accepting_states_listed() {
        let nfa = Nfa::concatenation(&[seq(&[0]), seq(&[1, 2])]);
        let accepting: Vec<usize> = nfa.accepting_states().collect();
        assert_eq!(accepting.len(), 1);
        assert!(nfa.accepting[accepting[0]]);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_concatenation_panics() {
        let _ = Nfa::concatenation(&[]);
    }

    #[test]
    fn word_mask_mirrors_accepting_flags() {
        for blocks in [
            vec![seq(&[0])],
            vec![seq(&[0, 1, 2])],
            vec![seq(&[0]), seq(&[1, 2]), seq(&[0, 0])],
        ] {
            let nfa = Nfa::concatenation(&blocks);
            for q in 0..nfa.state_count() {
                assert_eq!(nfa.is_accepting(q), nfa.accepting[q], "state {q}");
            }
        }
    }
}
