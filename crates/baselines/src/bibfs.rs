//! Bidirectional NFA-guided search (the "BiBFS" baseline of §VI).
//!
//! The forward search explores the graph–automaton product from
//! `(source, start state)`; the backward search explores the reversed product
//! from every `(target, accepting state)`. The two meet when they share a
//! product state. At every round the smaller frontier is expanded, which is
//! what makes BiBFS markedly faster than plain BFS on the large, high-degree
//! graphs of the paper (Fig. 3) while remaining orders of magnitude slower
//! than the RLC index.
//!
//! Both visited sets and all frontier buffers live in the per-thread
//! [`crate::scratch::ProductScratch`], so batch evaluation performs no
//! per-query allocation in the steady state. The visited sets are
//! bit-parallel ([`rlc_core::kernel::FrontierSet`]): instead of probing
//! the opposite side once per generated product state, each level is
//! expanded bit-wise and the meet test is a single word-parallel
//! intersection of the two visited sets through the runtime-dispatched
//! SIMD kernel — 64 product states per word op.

use crate::nfa::Nfa;
use crate::scratch::{with_scratch, ProductScratch};
use rlc_core::{Query, RlcQuery};
use rlc_graph::{LabeledGraph, VertexId};

/// Answers an RLC query by bidirectional product search.
pub fn bibfs_query(graph: &LabeledGraph, query: &RlcQuery) -> bool {
    let nfa = Nfa::kleene_plus(&query.constraint);
    bibfs_product(graph, &nfa, query.source, query.target)
}

/// Answers an extended concatenation query by bidirectional product search.
pub fn bibfs_concat_query(graph: &LabeledGraph, query: &Query) -> bool {
    let nfa = Nfa::concatenation(query.constraint().blocks());
    bibfs_product(graph, &nfa, query.source, query.target)
}

/// Bidirectional BFS over the graph–automaton product.
pub fn bibfs_product(graph: &LabeledGraph, nfa: &Nfa, source: VertexId, target: VertexId) -> bool {
    with_scratch(|scratch| bibfs_product_scratch(graph, nfa, source, target, scratch))
}

/// Bidirectional product search over explicit scratch state.
fn bibfs_product_scratch(
    graph: &LabeledGraph,
    nfa: &Nfa,
    source: VertexId,
    target: VertexId,
    scratch: &mut ProductScratch,
) -> bool {
    let states = nfa.state_count();
    scratch.begin(graph.vertex_count() * states);
    scratch.ensure_backward(graph.vertex_count() * states);
    let slot = |v: VertexId, q: usize| v as usize * states + q;

    let mut forward = scratch.take_frontier();
    let mut backward = scratch.take_frontier();
    let mut next = scratch.take_frontier();

    let result = 'search: {
        scratch.mark_forward(slot(source, nfa.start));
        forward.push((source, nfa.start as u32));
        for q in nfa.accepting_states() {
            if !scratch.mark_backward(slot(target, q)) {
                backward.push((target, q as u32));
            }
        }
        if backward.is_empty() {
            break 'search false;
        }
        if scratch.frontiers_meet() {
            break 'search true;
        }

        while !forward.is_empty() && !backward.is_empty() {
            // Expand the cheaper side: estimate by frontier size. The
            // searches meet iff the visited sets intersect, so the meet
            // test is hoisted out of the inner loop: expand one whole
            // level bit-wise, then run a single word-parallel
            // intersection over the two bitsets.
            if forward.len() <= backward.len() {
                next.clear();
                for &(v, q) in forward.iter() {
                    for (w, label) in graph.out_edges(v) {
                        for q_next in nfa.next(q as usize, label) {
                            if !scratch.mark_forward(slot(w, q_next)) {
                                next.push((w, q_next as u32));
                            }
                        }
                    }
                }
                std::mem::swap(&mut forward, &mut next);
            } else {
                next.clear();
                for &(v, q) in backward.iter() {
                    for (u, label) in graph.in_edges(v) {
                        for q_prev in nfa.prev(q as usize, label) {
                            if !scratch.mark_backward(slot(u, q_prev)) {
                                next.push((u, q_prev as u32));
                            }
                        }
                    }
                }
                std::mem::swap(&mut backward, &mut next);
            }
            if scratch.frontiers_meet() {
                break 'search true;
            }
        }
        false
    };

    scratch.recycle_frontier(forward);
    scratch.recycle_frontier(backward);
    scratch.recycle_frontier(next);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_query;
    use rlc_core::repeats::enumerate_minimum_repeats;
    use rlc_graph::examples::{fig1_graph, fig2_graph};
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};

    #[test]
    fn fig2_example_queries() {
        let g = fig2_graph();
        let q1 = RlcQuery::from_names(&g, "v3", "v6", &["l2", "l1"]).unwrap();
        assert!(bibfs_query(&g, &q1));
        let q3 = RlcQuery::from_names(&g, "v1", "v3", &["l1"]).unwrap();
        assert!(!bibfs_query(&g, &q3));
    }

    #[test]
    fn agrees_with_bfs_on_fig1() {
        let g = fig1_graph();
        let all_mrs = enumerate_minimum_repeats(g.label_count(), 2);
        for s in g.vertices() {
            for t in g.vertices() {
                for mr in &all_mrs {
                    let q = RlcQuery::new(s, t, mr.clone()).unwrap();
                    assert_eq!(
                        bfs_query(&g, &q),
                        bibfs_query(&g, &q),
                        "mismatch at ({s}, {t}, {mr:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn agrees_with_bfs_on_random_graph() {
        let g = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 99));
        let all_mrs = enumerate_minimum_repeats(2, 2);
        for s in (0..g.vertex_count() as u32).step_by(7) {
            for t in (0..g.vertex_count() as u32).step_by(11) {
                for mr in &all_mrs {
                    let q = RlcQuery::new(s, t, mr.clone()).unwrap();
                    assert_eq!(
                        bfs_query(&g, &q),
                        bibfs_query(&g, &q),
                        "mismatch at ({s}, {t}, {mr:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn concat_query_agrees_with_bfs() {
        let g = fig1_graph();
        let knows = g.labels().resolve("knows").unwrap();
        let holds = g.labels().resolve("holds").unwrap();
        for s in g.vertices() {
            for t in g.vertices() {
                let q = Query::concat(s, t, vec![vec![knows], vec![holds]]).unwrap();
                assert_eq!(
                    crate::bfs::bfs_concat_query(&g, &q),
                    bibfs_concat_query(&g, &q)
                );
            }
        }
    }
}
