//! Bidirectional NFA-guided search (the "BiBFS" baseline of §VI).
//!
//! The forward search explores the graph–automaton product from
//! `(source, start state)`; the backward search explores the reversed product
//! from every `(target, accepting state)`. The two meet when they share a
//! product state. At every round the smaller frontier is expanded, which is
//! what makes BiBFS markedly faster than plain BFS on the large, high-degree
//! graphs of the paper (Fig. 3) while remaining orders of magnitude slower
//! than the RLC index.

use crate::nfa::Nfa;
use rlc_core::{ConcatQuery, RlcQuery};
use rlc_graph::{LabeledGraph, VertexId};
use std::collections::HashSet;

/// Answers an RLC query by bidirectional product search.
pub fn bibfs_query(graph: &LabeledGraph, query: &RlcQuery) -> bool {
    let nfa = Nfa::kleene_plus(&query.constraint);
    bibfs_product(graph, &nfa, query.source, query.target)
}

/// Answers an extended concatenation query by bidirectional product search.
pub fn bibfs_concat_query(graph: &LabeledGraph, query: &ConcatQuery) -> bool {
    let nfa = Nfa::concatenation(&query.blocks);
    bibfs_product(graph, &nfa, query.source, query.target)
}

/// Bidirectional BFS over the graph–automaton product.
pub fn bibfs_product(graph: &LabeledGraph, nfa: &Nfa, source: VertexId, target: VertexId) -> bool {
    type State = (VertexId, usize);

    let mut forward_seen: HashSet<State> = HashSet::new();
    let mut backward_seen: HashSet<State> = HashSet::new();
    let mut forward_frontier: Vec<State> = vec![(source, nfa.start)];
    forward_seen.insert((source, nfa.start));
    let mut backward_frontier: Vec<State> = Vec::new();
    for q in nfa.accepting_states() {
        let s = (target, q);
        if backward_seen.insert(s) {
            backward_frontier.push(s);
        }
    }
    if backward_frontier.is_empty() {
        return false;
    }
    if forward_frontier.iter().any(|s| backward_seen.contains(s)) {
        return true;
    }

    while !forward_frontier.is_empty() && !backward_frontier.is_empty() {
        // Expand the cheaper side: estimate by frontier size.
        if forward_frontier.len() <= backward_frontier.len() {
            let mut next = Vec::new();
            for (v, q) in forward_frontier.drain(..) {
                for (w, label) in graph.out_edges(v) {
                    for q_next in nfa.next(q, label) {
                        let state = (w, q_next);
                        if backward_seen.contains(&state) {
                            return true;
                        }
                        if forward_seen.insert(state) {
                            next.push(state);
                        }
                    }
                }
            }
            forward_frontier = next;
        } else {
            let mut next = Vec::new();
            for (v, q) in backward_frontier.drain(..) {
                for (u, label) in graph.in_edges(v) {
                    for q_prev in nfa.prev(q, label) {
                        let state = (u, q_prev);
                        if forward_seen.contains(&state) {
                            return true;
                        }
                        if backward_seen.insert(state) {
                            next.push(state);
                        }
                    }
                }
            }
            backward_frontier = next;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_query;
    use rlc_core::repeats::enumerate_minimum_repeats;
    use rlc_graph::examples::{fig1_graph, fig2_graph};
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};

    #[test]
    fn fig2_example_queries() {
        let g = fig2_graph();
        let q1 = RlcQuery::from_names(&g, "v3", "v6", &["l2", "l1"]).unwrap();
        assert!(bibfs_query(&g, &q1));
        let q3 = RlcQuery::from_names(&g, "v1", "v3", &["l1"]).unwrap();
        assert!(!bibfs_query(&g, &q3));
    }

    #[test]
    fn agrees_with_bfs_on_fig1() {
        let g = fig1_graph();
        let all_mrs = enumerate_minimum_repeats(g.label_count(), 2);
        for s in g.vertices() {
            for t in g.vertices() {
                for mr in &all_mrs {
                    let q = RlcQuery::new(s, t, mr.clone()).unwrap();
                    assert_eq!(
                        bfs_query(&g, &q),
                        bibfs_query(&g, &q),
                        "mismatch at ({s}, {t}, {mr:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn agrees_with_bfs_on_random_graph() {
        let g = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 99));
        let all_mrs = enumerate_minimum_repeats(2, 2);
        for s in (0..g.vertex_count() as u32).step_by(7) {
            for t in (0..g.vertex_count() as u32).step_by(11) {
                for mr in &all_mrs {
                    let q = RlcQuery::new(s, t, mr.clone()).unwrap();
                    assert_eq!(
                        bfs_query(&g, &q),
                        bibfs_query(&g, &q),
                        "mismatch at ({s}, {t}, {mr:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn concat_query_agrees_with_bfs() {
        let g = fig1_graph();
        let knows = g.labels().resolve("knows").unwrap();
        let holds = g.labels().resolve("holds").unwrap();
        for s in g.vertices() {
            for t in g.vertices() {
                let q = ConcatQuery::new(s, t, vec![vec![knows], vec![holds]]);
                assert_eq!(
                    crate::bfs::bfs_concat_query(&g, &q),
                    bibfs_concat_query(&g, &q)
                );
            }
        }
    }
}
