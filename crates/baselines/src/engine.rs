//! [`ReachabilityEngine`] adapters for the baseline evaluators.
//!
//! Each adapter is a thin struct borrowing the graph (and, for ETC, the
//! closure) and routing the trait methods through the scratch-backed
//! traversal functions, so batch evaluation via
//! [`ReachabilityEngine::evaluate_batch`] reuses per-thread buffers instead
//! of allocating per query.

use crate::bfs::{bfs_concat_query, bfs_query};
use crate::bibfs::{bibfs_concat_query, bibfs_query};
use crate::dfs::{dfs_concat_query, dfs_query};
use crate::etc::EtcIndex;
use rlc_core::engine::ReachabilityEngine;
use rlc_core::{repetition_closure, ConcatQuery, RlcQuery};
use rlc_graph::{LabeledGraph, VertexId};

/// The online breadth-first baseline as a [`ReachabilityEngine`].
pub struct BfsEngine<'g> {
    graph: &'g LabeledGraph,
}

impl<'g> BfsEngine<'g> {
    /// Wraps a graph.
    pub fn new(graph: &'g LabeledGraph) -> Self {
        BfsEngine { graph }
    }
}

impl ReachabilityEngine for BfsEngine<'_> {
    fn name(&self) -> &str {
        "BFS"
    }

    fn evaluate(&self, query: &RlcQuery) -> bool {
        bfs_query(self.graph, query)
    }

    fn evaluate_concat(&self, query: &ConcatQuery) -> bool {
        bfs_concat_query(self.graph, query)
    }
}

/// The bidirectional-search baseline as a [`ReachabilityEngine`].
pub struct BiBfsEngine<'g> {
    graph: &'g LabeledGraph,
}

impl<'g> BiBfsEngine<'g> {
    /// Wraps a graph.
    pub fn new(graph: &'g LabeledGraph) -> Self {
        BiBfsEngine { graph }
    }
}

impl ReachabilityEngine for BiBfsEngine<'_> {
    fn name(&self) -> &str {
        "BiBFS"
    }

    fn evaluate(&self, query: &RlcQuery) -> bool {
        bibfs_query(self.graph, query)
    }

    fn evaluate_concat(&self, query: &ConcatQuery) -> bool {
        bibfs_concat_query(self.graph, query)
    }
}

/// The depth-first baseline as a [`ReachabilityEngine`].
pub struct DfsEngine<'g> {
    graph: &'g LabeledGraph,
}

impl<'g> DfsEngine<'g> {
    /// Wraps a graph.
    pub fn new(graph: &'g LabeledGraph) -> Self {
        DfsEngine { graph }
    }
}

impl ReachabilityEngine for DfsEngine<'_> {
    fn name(&self) -> &str {
        "DFS"
    }

    fn evaluate(&self, query: &RlcQuery) -> bool {
        dfs_query(self.graph, query)
    }

    fn evaluate_concat(&self, query: &ConcatQuery) -> bool {
        dfs_concat_query(self.graph, query)
    }
}

/// The extended transitive closure as a [`ReachabilityEngine`].
///
/// Plain RLC queries are answered by the closure's hash lookup alone.
/// Concatenated constraints are answered the same way the hybrid evaluator
/// works: an online repetition closure for every block except the last, and
/// one ETC lookup per frontier vertex for the final block.
pub struct EtcEngine<'g> {
    graph: &'g LabeledGraph,
    etc: &'g EtcIndex,
}

impl<'g> EtcEngine<'g> {
    /// Wraps a graph and its extended transitive closure.
    pub fn new(graph: &'g LabeledGraph, etc: &'g EtcIndex) -> Self {
        EtcEngine { graph, etc }
    }
}

impl ReachabilityEngine for EtcEngine<'_> {
    fn name(&self) -> &str {
        "ETC"
    }

    fn evaluate(&self, query: &RlcQuery) -> bool {
        self.etc.query(query)
    }

    fn evaluate_concat(&self, query: &ConcatQuery) -> bool {
        if let Err(error) = query.validate(self.etc.k()) {
            panic!("invalid concatenation query: {error}");
        }
        let mut frontier: Vec<VertexId> = vec![query.source];
        for (i, block) in query.blocks.iter().enumerate() {
            let is_last = i + 1 == query.blocks.len();
            if is_last {
                return frontier.iter().any(|&v| {
                    self.etc.query(&RlcQuery {
                        source: v,
                        target: query.target,
                        constraint: block.clone(),
                    })
                });
            }
            frontier = repetition_closure(self.graph, &frontier, block);
            if frontier.is_empty() {
                return false;
            }
        }
        unreachable!("the last block returns from the loop");
    }
}

/// The three purely online traversal engines over `graph`, boxed for uniform
/// iteration (BFS, BiBFS, DFS).
pub fn online_engines(graph: &LabeledGraph) -> Vec<Box<dyn ReachabilityEngine + '_>> {
    vec![
        Box::new(BfsEngine::new(graph)),
        Box::new(BiBfsEngine::new(graph)),
        Box::new(DfsEngine::new(graph)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etc::EtcBuildConfig;
    use rlc_graph::examples::fig1_graph;
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
    use rlc_graph::Label;

    #[test]
    fn online_engines_have_distinct_names() {
        let g = fig1_graph();
        let engines = online_engines(&g);
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["BFS", "BiBFS", "DFS"]);
    }

    #[test]
    fn adapters_agree_with_each_other_on_rlc_queries() {
        let g = erdos_renyi(&SyntheticConfig::new(70, 3.0, 3, 13));
        let engines = online_engines(&g);
        for s in (0..g.vertex_count() as u32).step_by(7) {
            for t in (0..g.vertex_count() as u32).step_by(9) {
                for constraint in [vec![Label(0)], vec![Label(0), Label(1)]] {
                    let q = RlcQuery::new(s, t, constraint).unwrap();
                    let answers: Vec<bool> = engines.iter().map(|e| e.evaluate(&q)).collect();
                    assert_eq!(answers[0], answers[1], "BFS vs BiBFS on ({s},{t})");
                    assert_eq!(answers[0], answers[2], "BFS vs DFS on ({s},{t})");
                }
            }
        }
    }

    #[test]
    fn etc_engine_answers_rlc_and_concat_queries() {
        let g = fig1_graph();
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let engine = EtcEngine::new(&g, &etc);
        assert_eq!(engine.name(), "ETC");
        let q = RlcQuery::from_names(&g, "A14", "A19", &["debits", "credits"]).unwrap();
        assert!(engine.evaluate(&q));

        let knows = g.labels().resolve("knows").unwrap();
        let holds = g.labels().resolve("holds").unwrap();
        let concat = ConcatQuery::new(
            g.vertex_id("P10").unwrap(),
            g.vertex_id("A19").unwrap(),
            vec![vec![knows], vec![holds]],
        );
        assert!(engine.evaluate_concat(&concat));
        assert_eq!(
            engine.evaluate_concat(&concat),
            bfs_concat_query(&g, &concat)
        );
    }

    #[test]
    fn etc_engine_concat_agrees_with_bfs_everywhere() {
        let g = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 31));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let engine = EtcEngine::new(&g, &etc);
        let l0 = Label(0);
        let l1 = Label(1);
        for s in (0..g.vertex_count() as u32).step_by(5) {
            for t in (0..g.vertex_count() as u32).step_by(7) {
                for blocks in [
                    vec![vec![l0]],
                    vec![vec![l0, l1]],
                    vec![vec![l0], vec![l1]],
                    vec![vec![l1], vec![l0, l1]],
                ] {
                    let q = ConcatQuery::new(s, t, blocks);
                    assert_eq!(
                        engine.evaluate_concat(&q),
                        bfs_concat_query(&g, &q),
                        "({s},{t})"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_evaluation_matches_single_for_all_adapters() {
        let g = erdos_renyi(&SyntheticConfig::new(50, 3.0, 3, 3));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let queries: Vec<RlcQuery> = (0..g.vertex_count() as u32)
            .flat_map(|s| {
                [vec![Label(0)], vec![Label(1), Label(0)]]
                    .into_iter()
                    .map(move |c| RlcQuery::new(s, (s * 7 + 3) % 50, c).unwrap())
            })
            .collect();
        let mut engines = online_engines(&g);
        engines.push(Box::new(EtcEngine::new(&g, &etc)));
        for engine in &engines {
            let batch = engine.evaluate_batch(&queries);
            for (query, answer) in queries.iter().zip(&batch) {
                assert_eq!(*answer, engine.evaluate(query), "{}", engine.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid concatenation query")]
    fn etc_engine_rejects_overlong_blocks() {
        let g = fig1_graph();
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let engine = EtcEngine::new(&g, &etc);
        let q = ConcatQuery::new(0, 1, vec![vec![Label(0), Label(1), Label(2)]]);
        engine.evaluate_concat(&q);
    }
}
