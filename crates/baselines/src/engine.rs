//! [`ReachabilityEngine`] adapters for the baseline evaluators.
//!
//! Each adapter borrows the graph (and, for ETC, the closure) and routes the
//! prepare/execute surface through the scratch-backed traversal functions.
//! The prepared artifact of the traversal engines is the constraint's
//! [`Nfa`], compiled once per [`ReachabilityEngine::prepare`] instead of once
//! per query; their [`ReachabilityEngine::evaluate_prepared_group`] override
//! answers every pair of a constraint group that shares a source with one
//! multi-target product search ([`bfs_product_multi`]).

use crate::bfs::{bfs_product, bfs_product_multi};
use crate::bibfs::bibfs_product;
use crate::dfs::dfs_product;
use crate::etc::EtcIndex;
use crate::nfa::Nfa;
use rlc_core::catalog::MrId;
use rlc_core::engine::{
    check_vertex_range, ArtifactTag, PlanIdentity, Prepared, ReachabilityEngine,
};
use rlc_core::hybrid::evaluate_blocks_grouped_with;
use rlc_core::{evaluate_blocks_with, Constraint, Query, QueryError};
use rlc_graph::{LabeledGraph, VertexId};
use std::collections::HashMap;

/// Compiles the NFA artifact shared by the traversal engines, priced at its
/// real footprint so plan-cache byte budgets stay honest.
fn prepare_nfa(engine_name: &str, constraint: &Constraint) -> Prepared {
    let nfa = Nfa::concatenation(constraint.blocks());
    let bytes = nfa.memory_bytes();
    Prepared::new(constraint.clone(), engine_name, nfa).with_approx_bytes(bytes)
}

/// Runs `eval` with the prepared NFA, re-compiling from the constraint when
/// the preparation came from an engine with a different artifact type — the
/// shared foreign-`Prepared` fallback of every NFA-driven engine (the
/// traversal baselines here and the simulated engines in `rlc-engine-sim`).
pub fn with_prepared_nfa<R>(prepared: &Prepared, eval: impl FnOnce(&Nfa) -> R) -> R {
    match prepared.artifact::<Nfa>() {
        Some(nfa) => eval(nfa),
        None => eval(&Nfa::concatenation(prepared.constraint().blocks())),
    }
}

/// Grouped evaluation shared by the forward traversal engines: pairs are
/// bucketed by source and each bucket is answered by one multi-target
/// product search.
fn grouped_forward_search(
    graph: &LabeledGraph,
    prepared: &Prepared,
    pairs: &[(VertexId, VertexId)],
) -> Vec<Result<bool, QueryError>> {
    with_prepared_nfa(prepared, |nfa| {
        let mut by_source: HashMap<VertexId, Vec<usize>> = HashMap::new();
        let mut answers: Vec<Result<bool, QueryError>> = Vec::with_capacity(pairs.len());
        for (i, &(s, t)) in pairs.iter().enumerate() {
            match check_vertex_range(s, t, graph.vertex_count()) {
                Ok(()) => {
                    answers.push(Ok(false));
                    by_source.entry(s).or_default().push(i);
                }
                Err(error) => answers.push(Err(error)),
            }
        }
        for (source, indices) in by_source {
            let targets: Vec<VertexId> = indices.iter().map(|&i| pairs[i].1).collect();
            let hits = bfs_product_multi(graph, nfa, source, &targets);
            for (&i, hit) in indices.iter().zip(hits) {
                answers[i] = Ok(hit);
            }
        }
        answers
    })
}

/// The online breadth-first baseline as a [`ReachabilityEngine`].
pub struct BfsEngine<'g> {
    graph: &'g LabeledGraph,
}

impl<'g> BfsEngine<'g> {
    /// Wraps a graph.
    pub fn new(graph: &'g LabeledGraph) -> Self {
        BfsEngine { graph }
    }
}

impl ReachabilityEngine for BfsEngine<'_> {
    fn name(&self) -> &str {
        "BFS"
    }

    fn prepare(&self, constraint: &Constraint) -> Result<Prepared, QueryError> {
        Ok(prepare_nfa(self.name(), constraint))
    }

    fn evaluate_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> Result<bool, QueryError> {
        check_vertex_range(source, target, self.graph.vertex_count())?;
        Ok(with_prepared_nfa(prepared, |nfa| {
            bfs_product(self.graph, nfa, source, target)
        }))
    }

    fn evaluate(&self, query: &Query) -> Result<bool, QueryError> {
        // One-shot fast path: compile the automaton on the spot without
        // boxing a `Prepared` (same result order as prepare-then-execute;
        // preparation never fails for a traversal engine).
        check_vertex_range(query.source, query.target, self.graph.vertex_count())?;
        let nfa = Nfa::concatenation(query.constraint().blocks());
        Ok(bfs_product(self.graph, &nfa, query.source, query.target))
    }

    fn evaluate_prepared_group(
        &self,
        pairs: &[(VertexId, VertexId)],
        prepared: &Prepared,
    ) -> Vec<Result<bool, QueryError>> {
        grouped_forward_search(self.graph, prepared, pairs)
    }
}

/// The bidirectional-search baseline as a [`ReachabilityEngine`].
pub struct BiBfsEngine<'g> {
    graph: &'g LabeledGraph,
}

impl<'g> BiBfsEngine<'g> {
    /// Wraps a graph.
    pub fn new(graph: &'g LabeledGraph) -> Self {
        BiBfsEngine { graph }
    }
}

impl ReachabilityEngine for BiBfsEngine<'_> {
    fn name(&self) -> &str {
        "BiBFS"
    }

    fn prepare(&self, constraint: &Constraint) -> Result<Prepared, QueryError> {
        Ok(prepare_nfa(self.name(), constraint))
    }

    fn evaluate_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> Result<bool, QueryError> {
        check_vertex_range(source, target, self.graph.vertex_count())?;
        Ok(with_prepared_nfa(prepared, |nfa| {
            bibfs_product(self.graph, nfa, source, target)
        }))
    }

    fn evaluate(&self, query: &Query) -> Result<bool, QueryError> {
        // One-shot fast path: compile the automaton on the spot without
        // boxing a `Prepared` (same result order as prepare-then-execute;
        // preparation never fails for a traversal engine).
        check_vertex_range(query.source, query.target, self.graph.vertex_count())?;
        let nfa = Nfa::concatenation(query.constraint().blocks());
        Ok(bibfs_product(self.graph, &nfa, query.source, query.target))
    }

    // No grouped override: measured on ER graphs, one bidirectional search
    // per pair (meeting in the middle, early exit) beats a shared forward
    // multi-target exploration even when dozens of pairs share a source —
    // the full accepting-reachable set costs more than many tiny meets.
    // BiBFS still gains the planner's one-prepare-per-group amortization
    // through the default per-pair implementation.
}

/// The depth-first baseline as a [`ReachabilityEngine`].
pub struct DfsEngine<'g> {
    graph: &'g LabeledGraph,
}

impl<'g> DfsEngine<'g> {
    /// Wraps a graph.
    pub fn new(graph: &'g LabeledGraph) -> Self {
        DfsEngine { graph }
    }
}

impl ReachabilityEngine for DfsEngine<'_> {
    fn name(&self) -> &str {
        "DFS"
    }

    fn prepare(&self, constraint: &Constraint) -> Result<Prepared, QueryError> {
        Ok(prepare_nfa(self.name(), constraint))
    }

    fn evaluate_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> Result<bool, QueryError> {
        check_vertex_range(source, target, self.graph.vertex_count())?;
        Ok(with_prepared_nfa(prepared, |nfa| {
            dfs_product(self.graph, nfa, source, target)
        }))
    }

    fn evaluate(&self, query: &Query) -> Result<bool, QueryError> {
        // One-shot fast path: compile the automaton on the spot without
        // boxing a `Prepared` (same result order as prepare-then-execute;
        // preparation never fails for a traversal engine).
        check_vertex_range(query.source, query.target, self.graph.vertex_count())?;
        let nfa = Nfa::concatenation(query.constraint().blocks());
        Ok(dfs_product(self.graph, &nfa, query.source, query.target))
    }

    fn evaluate_prepared_group(
        &self,
        pairs: &[(VertexId, VertexId)],
        prepared: &Prepared,
    ) -> Vec<Result<bool, QueryError>> {
        // Reachability is order-independent, so the grouped path shares the
        // breadth-first multi-target search.
        grouped_forward_search(self.graph, prepared, pairs)
    }
}

/// Prepared artifact of [`EtcEngine`]: the final block's minimum repeat
/// resolved against the closure's catalog (`None` when absent — the
/// constraint then holds for no pair), tagged with the identity of the
/// closure it was resolved against ([`ArtifactTag`], the same guard the
/// core index engines use) so a same-kind engine over a different closure
/// re-prepares instead of misreading the bare `MrId`.
struct PreparedEtc {
    last_mr: Option<MrId>,
    etc: ArtifactTag,
}

/// The identity tag of a closure, for [`PreparedEtc`]: address, `k`,
/// catalog size, and the construction generation — the stamp is what makes
/// a rebuilt closure at a reused address distinguishable (the ABA fix).
fn etc_tag(etc: &EtcIndex) -> ArtifactTag {
    ArtifactTag::from_raw(
        etc as *const EtcIndex as usize,
        etc.k(),
        etc.catalog().len(),
        etc.generation(),
    )
}

/// The extended transitive closure as a [`ReachabilityEngine`].
///
/// Single-block constraints are answered by the closure's hash lookup alone.
/// Concatenated constraints are answered the same way the hybrid evaluator
/// works: an online repetition closure for every block except the last, and
/// one ETC lookup per frontier vertex for the final block.
pub struct EtcEngine<'g> {
    graph: &'g LabeledGraph,
    etc: &'g EtcIndex,
}

impl<'g> EtcEngine<'g> {
    /// Wraps a graph and its extended transitive closure.
    pub fn new(graph: &'g LabeledGraph, etc: &'g EtcIndex) -> Self {
        EtcEngine { graph, etc }
    }

    fn evaluate_resolved(
        &self,
        source: VertexId,
        target: VertexId,
        blocks: &[Vec<rlc_graph::Label>],
        last_mr: Option<MrId>,
    ) -> bool {
        let Some(mr) = last_mr else {
            return false;
        };
        evaluate_blocks_with(self.graph, source, blocks, |v| {
            self.etc.query_mr(v, target, mr)
        })
    }

    /// Resolves a preparation against this engine's closure: the artifact's
    /// own [`MrId`] when the tag matches, otherwise a fresh re-prepare
    /// (wrong artifact type, or a same-kind engine over a different closure
    /// — the re-prepare re-runs the `k` check, so a constraint invalid here
    /// still errors instead of silently evaluating).
    fn resolved_last_mr(&self, prepared: &Prepared) -> Result<Option<MrId>, QueryError> {
        match prepared.artifact::<PreparedEtc>() {
            Some(artifact) if artifact.etc == etc_tag(self.etc) => Ok(artifact.last_mr),
            _ => {
                let own = self.prepare(prepared.constraint())?;
                Ok(own
                    .artifact::<PreparedEtc>()
                    // rlc-analyze: allow(panic-free-library) — prepare() of this engine always attaches a PreparedEtc artifact; a None is a broken engine contract, not an input error
                    .expect("EtcEngine::prepare produces a PreparedEtc artifact")
                    .last_mr)
            }
        }
    }
}

impl ReachabilityEngine for EtcEngine<'_> {
    fn name(&self) -> &str {
        "ETC"
    }

    fn prepare(&self, constraint: &Constraint) -> Result<Prepared, QueryError> {
        constraint.check_block_len(self.etc.k())?;
        let last_mr = self.etc.catalog().resolve(constraint.last_block());
        Ok(Prepared::new(
            constraint.clone(),
            self.name(),
            PreparedEtc {
                last_mr,
                etc: etc_tag(self.etc),
            },
        ))
    }

    fn evaluate_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> Result<bool, QueryError> {
        check_vertex_range(source, target, self.graph.vertex_count())?;
        let last_mr = self.resolved_last_mr(prepared)?;
        Ok(self.evaluate_resolved(source, target, prepared.constraint().blocks(), last_mr))
    }

    /// Grouped execute mirroring the index engines' PR 4 override: the
    /// shared grouped skeleton ([`evaluate_blocks_grouped_with`]) with the
    /// final block answered by the closure's hash lookup — the prefix-block
    /// repetition closure is computed **once per distinct source**,
    /// single-block constraints stay per-pair lookups. Answers and errors
    /// are indistinguishable from the per-pair path.
    fn evaluate_prepared_group(
        &self,
        pairs: &[(VertexId, VertexId)],
        prepared: &Prepared,
    ) -> Vec<Result<bool, QueryError>> {
        let resolved = self
            .resolved_last_mr(prepared)
            .map(|last_mr| last_mr.map(|mr| move |v, t| self.etc.query_mr(v, t, mr)));
        evaluate_blocks_grouped_with(self.graph, pairs, prepared.constraint().blocks(), resolved)
    }

    fn evaluate(&self, query: &Query) -> Result<bool, QueryError> {
        // One-shot fast path mirroring prepare-then-execute's validation
        // order (k check, then vertex range) without boxing a `Prepared`.
        let constraint = query.constraint();
        constraint.check_block_len(self.etc.k())?;
        check_vertex_range(query.source, query.target, self.graph.vertex_count())?;
        let last_mr = self.etc.catalog().resolve(constraint.last_block());
        Ok(self.evaluate_resolved(query.source, query.target, constraint.blocks(), last_mr))
    }

    fn plan_identity(&self) -> PlanIdentity {
        // The artifact embeds an MrId resolved against this closure's
        // catalog: plans are only shareable with engines over the exact
        // same closure (same generation).
        PlanIdentity::Index(etc_tag(self.etc))
    }
}

/// The three purely online traversal engines over `graph`, boxed for uniform
/// iteration (BFS, BiBFS, DFS).
pub fn online_engines(graph: &LabeledGraph) -> Vec<Box<dyn ReachabilityEngine + '_>> {
    vec![
        Box::new(BfsEngine::new(graph)),
        Box::new(BiBfsEngine::new(graph)),
        Box::new(DfsEngine::new(graph)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etc::EtcBuildConfig;
    use rlc_core::{Query, RlcQuery};
    use rlc_graph::examples::fig1_graph;
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
    use rlc_graph::Label;

    #[test]
    fn online_engines_have_distinct_names() {
        let g = fig1_graph();
        let engines = online_engines(&g);
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["BFS", "BiBFS", "DFS"]);
    }

    #[test]
    fn adapters_agree_with_each_other_on_rlc_queries() {
        let g = erdos_renyi(&SyntheticConfig::new(70, 3.0, 3, 13));
        let engines = online_engines(&g);
        for s in (0..g.vertex_count() as u32).step_by(7) {
            for t in (0..g.vertex_count() as u32).step_by(9) {
                for constraint in [vec![Label(0)], vec![Label(0), Label(1)]] {
                    let q = Query::rlc(s, t, constraint).unwrap();
                    let answers: Vec<bool> =
                        engines.iter().map(|e| e.evaluate(&q).unwrap()).collect();
                    assert_eq!(answers[0], answers[1], "BFS vs BiBFS on ({s},{t})");
                    assert_eq!(answers[0], answers[2], "BFS vs DFS on ({s},{t})");
                }
            }
        }
    }

    #[test]
    fn prepared_evaluation_matches_one_shot_for_all_adapters() {
        let g = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 31));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let mut engines = online_engines(&g);
        engines.push(Box::new(EtcEngine::new(&g, &etc)));
        let constraint = Constraint::new(vec![vec![Label(1)], vec![Label(0), Label(1)]]).unwrap();
        for engine in &engines {
            let prepared = engine.prepare(&constraint).unwrap();
            for s in (0..g.vertex_count() as u32).step_by(5) {
                for t in (0..g.vertex_count() as u32).step_by(7) {
                    let q = Query::new(s, t, constraint.clone());
                    assert_eq!(
                        engine.evaluate_prepared(s, t, &prepared),
                        engine.evaluate(&q),
                        "{} on ({s},{t})",
                        engine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn grouped_evaluation_matches_per_pair_evaluation() {
        let g = erdos_renyi(&SyntheticConfig::new(50, 3.0, 3, 3));
        let engines = online_engines(&g);
        let constraint = Constraint::single(vec![Label(0), Label(1)]).unwrap();
        // A pair mix heavy on repeated sources (the case the multi-target
        // search accelerates), plus unique-source pairs.
        let mut pairs: Vec<(u32, u32)> = (0..40u32).map(|t| (7, (t * 3) % 50)).collect();
        pairs.extend((0..10u32).map(|s| (s, (s * 11 + 1) % 50)));
        for engine in &engines {
            let prepared = engine.prepare(&constraint).unwrap();
            let grouped = engine.evaluate_prepared_group(&pairs, &prepared);
            for (&(s, t), grouped_answer) in pairs.iter().zip(&grouped) {
                assert_eq!(
                    *grouped_answer,
                    engine.evaluate_prepared(s, t, &prepared),
                    "{} on ({s},{t})",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn etc_grouped_evaluation_matches_per_pair_evaluation() {
        // The PR 4 grouped override, now on ETC: heavy source reuse across
        // single-block and multi-block constraints, plus out-of-range pairs
        // and a last block absent from the closure's catalog — answers AND
        // errors must be indistinguishable from the per-pair path.
        let g = erdos_renyi(&SyntheticConfig::new(50, 3.0, 3, 17));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let engine = EtcEngine::new(&g, &etc);
        let n = g.vertex_count() as u32;
        let mut pairs: Vec<(u32, u32)> = (0..40u32).map(|t| (7, (t * 3) % n)).collect();
        pairs.extend((0..10u32).map(|s| (s, (s * 11 + 1) % n)));
        pairs.push((n + 3, 0));
        pairs.push((0, n + 4));
        let constraints = [
            Constraint::single(vec![Label(1)]).unwrap(),
            Constraint::new(vec![vec![Label(1)], vec![Label(0)]]).unwrap(),
            Constraint::new(vec![vec![Label(0)], vec![Label(1)], vec![Label(2)]]).unwrap(),
            // A final block no closure record carries: everything false.
            Constraint::new(vec![vec![Label(1)], vec![Label(9)]]).unwrap(),
        ];
        for constraint in &constraints {
            let prepared = engine.prepare(constraint).unwrap();
            let grouped = engine.evaluate_prepared_group(&pairs, &prepared);
            assert_eq!(grouped.len(), pairs.len());
            for (&(s, t), grouped_answer) in pairs.iter().zip(&grouped) {
                assert_eq!(
                    *grouped_answer,
                    engine.evaluate_prepared(s, t, &prepared),
                    "ETC grouped vs per-pair on ({s},{t}) under {constraint:?}"
                );
            }
        }
    }

    #[test]
    fn etc_grouped_evaluation_with_a_foreign_preparation_errors_like_per_pair() {
        // A constraint too long for this closure, prepared against another:
        // the grouped path must yield the same error for every in-range
        // pair and the range error for out-of-range ones.
        let g = fig1_graph();
        let etc_k2 = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let etc_k3 = EtcIndex::build(&g, &EtcBuildConfig::new(3));
        let engine_k2 = EtcEngine::new(&g, &etc_k2);
        let engine_k3 = EtcEngine::new(&g, &etc_k3);
        let long =
            Constraint::new(vec![vec![Label(0)], vec![Label(0), Label(1), Label(2)]]).unwrap();
        let prepared_k3 = engine_k3.prepare(&long).unwrap();
        let n = g.vertex_count() as u32;
        let pairs = [(0, 1), (0, 2), (3, 4), (n + 5, 0)];
        let grouped = engine_k2.evaluate_prepared_group(&pairs, &prepared_k3);
        let per_pair: Vec<_> = pairs
            .iter()
            .map(|&(s, t)| engine_k2.evaluate_prepared(s, t, &prepared_k3))
            .collect();
        assert_eq!(grouped, per_pair);
        let expected = Err(QueryError::BlockTooLong {
            block: 1,
            len: 3,
            k: 2,
        });
        assert_eq!(
            grouped,
            vec![
                expected.clone(),
                expected.clone(),
                expected,
                Err(QueryError::VertexOutOfRange {
                    vertex: n + 5,
                    vertices: g.vertex_count(),
                }),
            ]
        );
    }

    #[test]
    fn prepared_nfa_prices_its_real_footprint() {
        // The honest-byte-pricing satellite: a bigger automaton must report
        // a bigger preparation, and the figure must cover the NFA tables.
        let small = Constraint::single(vec![Label(0)]).unwrap();
        let big = Constraint::new(vec![
            vec![Label(0), Label(1)],
            vec![Label(2)],
            vec![Label(0), Label(2), Label(1)],
        ])
        .unwrap();
        let g = fig1_graph();
        let engine = BfsEngine::new(&g);
        let small_plan = engine.prepare(&small).unwrap();
        let big_plan = engine.prepare(&big).unwrap();
        assert!(big_plan.approx_bytes() > small_plan.approx_bytes());
        let nfa = Nfa::concatenation(big.blocks());
        assert!(big_plan.approx_bytes() >= nfa.memory_bytes());
    }

    #[test]
    fn etc_engine_answers_rlc_and_concat_queries() {
        let g = fig1_graph();
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let engine = EtcEngine::new(&g, &etc);
        assert_eq!(engine.name(), "ETC");
        let rlc = RlcQuery::from_names(&g, "A14", "A19", &["debits", "credits"]).unwrap();
        assert_eq!(engine.evaluate(&Query::from(&rlc)), Ok(true));

        let knows = g.labels().resolve("knows").unwrap();
        let holds = g.labels().resolve("holds").unwrap();
        let concat = Query::concat(
            g.vertex_id("P10").unwrap(),
            g.vertex_id("A19").unwrap(),
            vec![vec![knows], vec![holds]],
        )
        .unwrap();
        assert_eq!(engine.evaluate(&concat), Ok(true));
        assert_eq!(
            engine.evaluate(&concat),
            BfsEngine::new(&g).evaluate(&concat)
        );
    }

    #[test]
    fn etc_engine_concat_agrees_with_bfs_everywhere() {
        let g = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 31));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let engine = EtcEngine::new(&g, &etc);
        let bfs = BfsEngine::new(&g);
        let l0 = Label(0);
        let l1 = Label(1);
        for s in (0..g.vertex_count() as u32).step_by(5) {
            for t in (0..g.vertex_count() as u32).step_by(7) {
                for blocks in [
                    vec![vec![l0]],
                    vec![vec![l0, l1]],
                    vec![vec![l0], vec![l1]],
                    vec![vec![l1], vec![l0, l1]],
                ] {
                    let q = Query::concat(s, t, blocks).unwrap();
                    assert_eq!(engine.evaluate(&q), bfs.evaluate(&q), "({s},{t})");
                }
            }
        }
    }

    #[test]
    fn batch_evaluation_matches_single_for_all_adapters() {
        let g = erdos_renyi(&SyntheticConfig::new(50, 3.0, 3, 3));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let queries: Vec<Query> = (0..g.vertex_count() as u32)
            .flat_map(|s| {
                [vec![Label(0)], vec![Label(1), Label(0)]]
                    .into_iter()
                    .map(move |c| Query::rlc(s, (s * 7 + 3) % 50, c).unwrap())
            })
            .collect();
        let mut engines = online_engines(&g);
        engines.push(Box::new(EtcEngine::new(&g, &etc)));
        for engine in &engines {
            let batch = engine.evaluate_batch(&queries);
            for (query, answer) in queries.iter().zip(&batch) {
                assert_eq!(*answer, engine.evaluate(query), "{}", engine.name());
            }
        }
    }

    #[test]
    fn etc_engine_rejects_overlong_blocks_with_an_error() {
        let g = fig1_graph();
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let engine = EtcEngine::new(&g, &etc);
        let q = Query::rlc(0, 1, vec![Label(0), Label(1), Label(2)]).unwrap();
        assert_eq!(
            engine.evaluate(&q),
            Err(QueryError::BlockTooLong {
                block: 0,
                len: 3,
                k: 2
            })
        );
        // Traversal engines have no k and accept the same constraint.
        assert!(BfsEngine::new(&g).evaluate(&q).is_ok());
    }
}
