//! NFA-guided breadth-first search over the graph–automaton product (the
//! "BFS" baseline of §VI).
//!
//! The traversal state (visited table, queue) lives in the per-thread
//! [`crate::scratch::ProductScratch`], so repeated queries — in particular
//! batches fanned out by [`rlc_core::engine::ReachabilityEngine::evaluate_batch`]
//! — perform no per-query allocation in the steady state.

use crate::nfa::Nfa;
use crate::scratch::{with_scratch, ProductScratch};
use rlc_core::{Query, RlcQuery};
use rlc_graph::{LabeledGraph, VertexId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Answers an RLC query by breadth-first search over `(vertex, NFA state)`
/// pairs, starting from `(source, start)` and succeeding when any
/// `(target, accepting)` pair is reached.
pub fn bfs_query(graph: &LabeledGraph, query: &RlcQuery) -> bool {
    let nfa = Nfa::kleene_plus(&query.constraint);
    bfs_product(graph, &nfa, query.source, query.target)
}

/// Answers an extended concatenation query (`B1+ ∘ … ∘ Bm+`) by the same
/// product BFS, with the automaton built for the whole concatenation.
pub fn bfs_concat_query(graph: &LabeledGraph, query: &Query) -> bool {
    let nfa = Nfa::concatenation(query.constraint().blocks());
    bfs_product(graph, &nfa, query.source, query.target)
}

/// Product-graph BFS shared by the RLC and concatenation entry points.
pub fn bfs_product(graph: &LabeledGraph, nfa: &Nfa, source: VertexId, target: VertexId) -> bool {
    with_scratch(|scratch| bfs_product_scratch(graph, nfa, source, target, scratch))
}

/// Product BFS over explicit scratch state.
fn bfs_product_scratch(
    graph: &LabeledGraph,
    nfa: &Nfa,
    source: VertexId,
    target: VertexId,
    scratch: &mut ProductScratch,
) -> bool {
    let states = nfa.state_count();
    debug_assert!(states > 0);
    scratch.begin(graph.vertex_count() * states);
    let slot = |v: VertexId, q: usize| v as usize * states + q;
    scratch.mark_forward(slot(source, nfa.start));
    if source == target && nfa.is_accepting(nfa.start) {
        return true;
    }
    scratch.queue.push_back((source, nfa.start as u32));
    while let Some((v, q)) = scratch.queue.pop_front() {
        for (w, label) in graph.out_edges(v) {
            for q_next in nfa.next(q as usize, label) {
                if scratch.mark_forward(slot(w, q_next)) {
                    continue;
                }
                if w == target && nfa.is_accepting(q_next) {
                    return true;
                }
                scratch.queue.push_back((w, q_next as u32));
            }
        }
    }
    false
}

/// Answers many targets with **one** product BFS from `source`: returns, in
/// target order, whether each target is reachable under the constraint the
/// automaton encodes.
///
/// This is the grouped multi-source search behind
/// `ReachabilityEngine::evaluate_prepared_group` for the traversal engines:
/// a constraint-grouped batch planner hands every same-source pair of a
/// group to one traversal instead of one per pair. The search stops early
/// once every distinct target has been answered.
pub fn bfs_product_multi(
    graph: &LabeledGraph,
    nfa: &Nfa,
    source: VertexId,
    targets: &[VertexId],
) -> Vec<bool> {
    with_scratch(|scratch| bfs_product_multi_scratch(graph, nfa, source, targets, scratch))
}

/// Multi-target product BFS over explicit scratch state.
fn bfs_product_multi_scratch(
    graph: &LabeledGraph,
    nfa: &Nfa,
    source: VertexId,
    targets: &[VertexId],
    scratch: &mut ProductScratch,
) -> Vec<bool> {
    let mut answers = vec![false; targets.len()];
    if targets.is_empty() {
        return answers;
    }
    // Duplicate targets share one entry; `remaining` counts distinct
    // unanswered targets so the search can stop as soon as all are hit.
    let mut slots_by_target: HashMap<VertexId, Vec<usize>> = HashMap::new();
    for (i, &t) in targets.iter().enumerate() {
        slots_by_target.entry(t).or_default().push(i);
    }
    let mut remaining = slots_by_target.len();

    let states = nfa.state_count();
    scratch.begin(graph.vertex_count() * states);
    let slot = |v: VertexId, q: usize| v as usize * states + q;
    let settle = |answers: &mut Vec<bool>, remaining: &mut usize, vertex: VertexId| {
        if let Some(slots) = slots_by_target.get(&vertex) {
            if !answers[slots[0]] {
                for &i in slots {
                    answers[i] = true;
                }
                *remaining -= 1;
            }
        }
    };

    scratch.mark_forward(slot(source, nfa.start));
    if nfa.is_accepting(nfa.start) {
        settle(&mut answers, &mut remaining, source);
        if remaining == 0 {
            return answers;
        }
    }
    scratch.queue.push_back((source, nfa.start as u32));
    'search: while let Some((v, q)) = scratch.queue.pop_front() {
        for (w, label) in graph.out_edges(v) {
            for q_next in nfa.next(q as usize, label) {
                if scratch.mark_forward(slot(w, q_next)) {
                    continue;
                }
                if nfa.is_accepting(q_next) {
                    settle(&mut answers, &mut remaining, w);
                    if remaining == 0 {
                        break 'search;
                    }
                }
                scratch.queue.push_back((w, q_next as u32));
            }
        }
    }
    answers
}

/// Counts the number of product states a BFS evaluation visits; used by the
/// experiment harness to report search effort independently of wall-clock
/// noise.
pub fn bfs_visited_states(graph: &LabeledGraph, query: &RlcQuery) -> usize {
    let nfa = Nfa::kleene_plus(&query.constraint);
    let mut visited: HashSet<(VertexId, usize)> = HashSet::new();
    let mut queue: VecDeque<(VertexId, usize)> = VecDeque::new();
    visited.insert((query.source, nfa.start));
    queue.push_back((query.source, nfa.start));
    while let Some((v, q)) = queue.pop_front() {
        for (w, label) in graph.out_edges(v) {
            for q_next in nfa.next(q, label) {
                if visited.insert((w, q_next)) {
                    queue.push_back((w, q_next));
                }
            }
        }
    }
    visited.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_graph::examples::{fig1_graph, fig2_graph};
    use rlc_graph::Label;

    #[test]
    fn fig2_example_queries() {
        let g = fig2_graph();
        let q1 = RlcQuery::from_names(&g, "v3", "v6", &["l2", "l1"]).unwrap();
        assert!(bfs_query(&g, &q1));
        let q2 = RlcQuery::from_names(&g, "v1", "v2", &["l2", "l1"]).unwrap();
        assert!(bfs_query(&g, &q2));
        let q3 = RlcQuery::from_names(&g, "v1", "v3", &["l1"]).unwrap();
        assert!(!bfs_query(&g, &q3));
    }

    #[test]
    fn fig1_fraud_query() {
        let g = fig1_graph();
        let q = RlcQuery::from_names(&g, "A14", "A19", &["debits", "credits"]).unwrap();
        assert!(bfs_query(&g, &q));
        let q_false =
            RlcQuery::from_names(&g, "P10", "P13", &["knows", "knows", "worksFor"]).unwrap();
        assert!(!bfs_query(&g, &q_false));
    }

    #[test]
    fn source_equal_target_requires_a_cycle() {
        let g = fig2_graph();
        // v1 -l2-> v3 -l2-> v1 is an (l2)+ cycle.
        let q = RlcQuery::from_names(&g, "v1", "v1", &["l2"]).unwrap();
        assert!(bfs_query(&g, &q));
        // There is no (l3)+ cycle at v1.
        let q2 = RlcQuery::from_names(&g, "v1", "v1", &["l3"]).unwrap();
        assert!(!bfs_query(&g, &q2));
    }

    #[test]
    fn concat_query_on_fig1() {
        let g = fig1_graph();
        let knows = g.labels().resolve("knows").unwrap();
        let holds = g.labels().resolve("holds").unwrap();
        let q = Query::concat(
            g.vertex_id("P10").unwrap(),
            g.vertex_id("A19").unwrap(),
            vec![vec![knows], vec![holds]],
        )
        .unwrap();
        assert!(bfs_concat_query(&g, &q));
        let q_false = Query::concat(
            g.vertex_id("A14").unwrap(),
            g.vertex_id("P10").unwrap(),
            vec![vec![knows], vec![holds]],
        )
        .unwrap();
        assert!(!bfs_concat_query(&g, &q_false));
    }

    #[test]
    fn unreachable_target_is_false() {
        let g = fig1_graph();
        let q = RlcQuery::new(
            g.vertex_id("A19").unwrap(),
            g.vertex_id("P10").unwrap(),
            vec![Label(0)],
        )
        .unwrap();
        assert!(!bfs_query(&g, &q));
    }

    #[test]
    fn repeated_queries_reuse_scratch_state() {
        // Back-to-back queries with different automaton sizes must not leak
        // visited state between runs.
        let g = fig2_graph();
        let q_true = RlcQuery::from_names(&g, "v3", "v6", &["l2", "l1"]).unwrap();
        let q_false = RlcQuery::from_names(&g, "v1", "v3", &["l1"]).unwrap();
        for _ in 0..50 {
            assert!(bfs_query(&g, &q_true));
            assert!(!bfs_query(&g, &q_false));
        }
    }

    #[test]
    fn multi_target_search_matches_single_target() {
        let g = fig2_graph();
        let q = RlcQuery::from_names(&g, "v1", "v1", &["l2", "l1"]).unwrap();
        let nfa = Nfa::kleene_plus(&q.constraint);
        let targets: Vec<_> = g.vertices().collect();
        for s in g.vertices() {
            let answers = bfs_product_multi(&g, &nfa, s, &targets);
            for (&t, &answer) in targets.iter().zip(&answers) {
                assert_eq!(answer, bfs_product(&g, &nfa, s, t), "({s},{t})");
            }
        }
        // Duplicate targets are answered consistently; empty target lists
        // are a no-op.
        let duplicated = vec![0, 0, 5];
        let answers = bfs_product_multi(&g, &nfa, 0, &duplicated);
        assert_eq!(answers[0], answers[1]);
        assert!(bfs_product_multi(&g, &nfa, 0, &[]).is_empty());
    }

    #[test]
    fn visited_states_is_bounded_by_product_size() {
        let g = fig2_graph();
        let q = RlcQuery::from_names(&g, "v1", "v6", &["l1"]).unwrap();
        let visited = bfs_visited_states(&g, &q);
        assert!(visited >= 1);
        assert!(visited <= g.vertex_count() * 2);
    }
}
