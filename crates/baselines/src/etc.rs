//! The extended transitive closure (ETC) baseline of §VI.
//!
//! ETC materializes, for every reachable ordered pair of vertices `(u, v)`,
//! the set of k-MRs of paths from `u` to `v`. It is built by a forward
//! kernel-based search from every vertex *without any pruning rules* —
//! exactly the construction the paper describes for its ETC baseline — and is
//! therefore both much slower to build and much larger than the RLC index
//! (Table IV), while answering queries by a single hash lookup.

use rlc_core::catalog::{MrCatalog, MrId};
use rlc_core::repeats::minimum_repeat_len;
use rlc_core::RlcQuery;
use rlc_graph::{Label, LabeledGraph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// Configuration for building an [`EtcIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EtcBuildConfig {
    /// The recursive `k`.
    pub k: usize,
    /// Wall-clock budget; the paper caps ETC construction at 24 hours, this
    /// reproduction defaults to no cap and the harness passes explicit caps.
    pub time_budget: Option<Duration>,
    /// Entry budget (reachable-pair × MR records).
    pub max_records: Option<usize>,
}

impl EtcBuildConfig {
    /// Default configuration for a given `k` (no budget).
    pub fn new(k: usize) -> Self {
        EtcBuildConfig {
            k,
            time_budget: None,
            max_records: None,
        }
    }

    /// Sets the wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Sets the record budget.
    pub fn with_max_records(mut self, max: usize) -> Self {
        self.max_records = Some(max);
        self
    }
}

/// Build statistics of an [`EtcIndex`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EtcStats {
    /// Wall-clock build time.
    pub duration: Duration,
    /// Number of `(u, v, MR)` records stored.
    pub records: usize,
    /// Number of distinct reachable pairs stored.
    pub pairs: usize,
    /// Whether the build hit a budget and returned a partial closure.
    pub timed_out: bool,
}

/// The extended transitive closure: `(source, target) → { MrId }`.
#[derive(Debug, Clone)]
pub struct EtcIndex {
    k: usize,
    closure: HashMap<(VertexId, VertexId), Vec<MrId>>,
    catalog: MrCatalog,
    stats: EtcStats,
}

impl EtcIndex {
    /// Builds the extended transitive closure of `graph`.
    pub fn build(graph: &LabeledGraph, config: &EtcBuildConfig) -> Self {
        assert!(config.k >= 1, "recursive k must be at least 1");
        let started = Instant::now();
        let deadline = config.time_budget.map(|b| started + b);
        let mut closure: HashMap<(VertexId, VertexId), Vec<MrId>> = HashMap::new();
        let mut catalog = MrCatalog::new();
        let mut records = 0usize;
        let mut timed_out = false;

        'roots: for root in graph.vertices() {
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    timed_out = true;
                    break;
                }
            }
            if let Some(max) = config.max_records {
                if records >= max {
                    timed_out = true;
                    break;
                }
            }
            // Phase 1: enumerate all outgoing label sequences of length ≤ k.
            let mut seen: HashSet<(VertexId, Vec<Label>)> = HashSet::new();
            let mut queue: VecDeque<(VertexId, Vec<Label>)> = VecDeque::new();
            let mut frontiers: HashMap<Vec<Label>, Vec<VertexId>> = HashMap::new();
            queue.push_back((root, Vec::new()));
            while let Some((x, seq)) = queue.pop_front() {
                for (y, label) in graph.out_edges(x) {
                    let mut extended = seq.clone();
                    extended.push(label);
                    if !seen.insert((y, extended.clone())) {
                        continue;
                    }
                    let mr_len = minimum_repeat_len(&extended);
                    if mr_len <= config.k {
                        let mr = catalog.intern(&extended[..mr_len]);
                        if record(&mut closure, root, y, mr) {
                            records += 1;
                        }
                        if extended.len() + mr_len > config.k {
                            match frontiers.entry(extended[..mr_len].to_vec()) {
                                MapEntry::Occupied(mut o) => o.get_mut().push(y),
                                MapEntry::Vacant(v) => {
                                    v.insert(vec![y]);
                                }
                            }
                        }
                    }
                    if extended.len() < config.k {
                        queue.push_back((y, extended));
                    }
                }
            }
            // Phase 2: kernel-guided BFS per candidate, no pruning.
            for (kernel, frontier) in frontiers {
                let klen = kernel.len();
                let mr = catalog.intern(&kernel);
                let mut visited: HashSet<(VertexId, usize)> = HashSet::new();
                let mut queue: VecDeque<(VertexId, usize)> = VecDeque::new();
                for v in frontier {
                    if visited.insert((v, 0)) {
                        queue.push_back((v, 0));
                    }
                }
                let mut steps = 0u32;
                while let Some((x, state)) = queue.pop_front() {
                    steps += 1;
                    if steps.is_multiple_of(4096) {
                        if let Some(deadline) = deadline {
                            if Instant::now() >= deadline {
                                timed_out = true;
                                break 'roots;
                            }
                        }
                    }
                    let expected = kernel[state];
                    for (y, label) in graph.out_edges(x) {
                        if label != expected {
                            continue;
                        }
                        let next = (state + 1) % klen;
                        if !visited.insert((y, next)) {
                            continue;
                        }
                        if next == 0 && record(&mut closure, root, y, mr) {
                            records += 1;
                        }
                        queue.push_back((y, next));
                    }
                }
            }
        }

        let pairs = closure.len();
        EtcIndex {
            k: config.k,
            closure,
            catalog,
            stats: EtcStats {
                duration: started.elapsed(),
                records,
                pairs,
                timed_out,
            },
        }
    }

    /// The recursive `k` the closure supports.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Answers an RLC query by hash lookup.
    pub fn query(&self, query: &RlcQuery) -> bool {
        assert!(
            query.constraint.len() <= self.k,
            "constraint longer than the closure's recursive k"
        );
        let mr = match self.catalog.resolve(&query.constraint) {
            Some(mr) => mr,
            None => return false,
        };
        self.closure
            .get(&(query.source, query.target))
            .map(|mrs| mrs.contains(&mr))
            .unwrap_or(false)
    }

    /// Build statistics.
    pub fn stats(&self) -> &EtcStats {
        &self.stats
    }

    /// Number of `(u, v, MR)` records stored.
    pub fn record_count(&self) -> usize {
        self.stats.records
    }

    /// Estimated memory footprint in bytes: hash-map bucket overhead plus the
    /// stored keys and MR lists (matching how the paper sizes its Java
    /// hashmap-of-lists ETC implementation, scaled to this representation).
    pub fn memory_bytes(&self) -> usize {
        let per_pair =
            std::mem::size_of::<(VertexId, VertexId)>() + std::mem::size_of::<Vec<MrId>>() + 16; // hash-map bucket & control overhead
        self.closure.len() * per_pair
            + self.stats.records * std::mem::size_of::<MrId>()
            + self.catalog.memory_bytes()
    }
}

fn record(
    closure: &mut HashMap<(VertexId, VertexId), Vec<MrId>>,
    source: VertexId,
    target: VertexId,
    mr: MrId,
) -> bool {
    let mrs = closure.entry((source, target)).or_default();
    if mrs.contains(&mr) {
        false
    } else {
        mrs.push(mr);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_query;
    use rlc_core::repeats::enumerate_minimum_repeats;
    use rlc_core::{build_index, BuildConfig};
    use rlc_graph::examples::{fig1_graph, fig2_graph};
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};

    #[test]
    fn fig2_example_queries() {
        let g = fig2_graph();
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let q1 = RlcQuery::from_names(&g, "v3", "v6", &["l2", "l1"]).unwrap();
        assert!(etc.query(&q1));
        let q3 = RlcQuery::from_names(&g, "v1", "v3", &["l1"]).unwrap();
        assert!(!etc.query(&q3));
        assert!(etc.record_count() > 0);
        assert!(etc.memory_bytes() > 0);
        assert!(!etc.stats().timed_out);
    }

    #[test]
    fn agrees_with_online_bfs_on_fig1() {
        let g = fig1_graph();
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let all_mrs = enumerate_minimum_repeats(g.label_count(), 2);
        for s in g.vertices() {
            for t in g.vertices() {
                for mr in &all_mrs {
                    let q = RlcQuery::new(s, t, mr.clone()).unwrap();
                    assert_eq!(bfs_query(&g, &q), etc.query(&q), "({s},{t},{mr:?})");
                }
            }
        }
    }

    #[test]
    fn agrees_with_rlc_index_on_random_graph() {
        let g = erdos_renyi(&SyntheticConfig::new(70, 3.0, 3, 21));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let (rlc, _) = build_index(&g, &BuildConfig::new(2));
        let all_mrs = enumerate_minimum_repeats(3, 2);
        for s in (0..g.vertex_count() as u32).step_by(5) {
            for t in (0..g.vertex_count() as u32).step_by(7) {
                for mr in &all_mrs {
                    let q = RlcQuery::new(s, t, mr.clone()).unwrap();
                    assert_eq!(etc.query(&q), rlc.query(&q), "({s},{t},{mr:?})");
                }
            }
        }
    }

    #[test]
    fn etc_is_larger_than_rlc_index() {
        // The whole point of the RLC index (Table IV): the closure records
        // one entry per reachable pair and MR, the index only per hub.
        let g = erdos_renyi(&SyntheticConfig::new(150, 4.0, 4, 8));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let (rlc, _) = build_index(&g, &BuildConfig::new(2));
        assert!(
            etc.record_count() > rlc.entry_count(),
            "ETC ({}) should store more records than the RLC index ({})",
            etc.record_count(),
            rlc.entry_count()
        );
    }

    #[test]
    fn record_budget_truncates_build() {
        let g = erdos_renyi(&SyntheticConfig::new(200, 4.0, 4, 9));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2).with_max_records(10));
        assert!(etc.stats().timed_out);
    }

    #[test]
    fn time_budget_truncates_build() {
        let g = erdos_renyi(&SyntheticConfig::new(2000, 5.0, 4, 9));
        let etc = EtcIndex::build(
            &g,
            &EtcBuildConfig::new(2).with_time_budget(Duration::from_nanos(1)),
        );
        assert!(etc.stats().timed_out);
    }

    #[test]
    fn unknown_constraint_is_false() {
        let g = fig2_graph();
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let q = RlcQuery::new(0, 1, vec![Label(42)]).unwrap();
        assert!(!etc.query(&q));
    }
}
