//! The extended transitive closure (ETC) baseline of §VI.
//!
//! ETC materializes, for every reachable ordered pair of vertices `(u, v)`,
//! the set of k-MRs of paths from `u` to `v`. It is built by a forward
//! kernel-based search from every vertex *without any pruning rules* —
//! exactly the construction the paper describes for its ETC baseline — and is
//! therefore both much slower to build and much larger than the RLC index
//! (Table IV), while answering queries by a single hash lookup.

use rlc_core::catalog::{MrCatalog, MrId};
use rlc_core::engine::Generation;
use rlc_core::repeats::minimum_repeat_len;
use rlc_core::RlcQuery;
use rlc_graph::{Label, LabeledGraph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// Configuration for building an [`EtcIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EtcBuildConfig {
    /// The recursive `k`.
    pub k: usize,
    /// Wall-clock budget; the paper caps ETC construction at 24 hours, this
    /// reproduction defaults to no cap and the harness passes explicit caps.
    pub time_budget: Option<Duration>,
    /// Entry budget (reachable-pair × MR records).
    pub max_records: Option<usize>,
}

impl EtcBuildConfig {
    /// Default configuration for a given `k` (no budget).
    pub fn new(k: usize) -> Self {
        EtcBuildConfig {
            k,
            time_budget: None,
            max_records: None,
        }
    }

    /// Sets the wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Sets the record budget.
    pub fn with_max_records(mut self, max: usize) -> Self {
        self.max_records = Some(max);
        self
    }
}

/// Build statistics of an [`EtcIndex`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EtcStats {
    /// Wall-clock build time.
    pub duration: Duration,
    /// Number of `(u, v, MR)` records stored.
    pub records: usize,
    /// Number of distinct reachable pairs stored.
    pub pairs: usize,
    /// Whether the build hit a budget and returned a partial closure.
    pub timed_out: bool,
}

/// The extended transitive closure: `(source, target) → { MrId }`.
#[derive(Debug, Clone)]
pub struct EtcIndex {
    k: usize,
    /// Number of vertices of the indexed graph; bounds every vertex id in
    /// `closure` (also enforced when deserializing untrusted blobs).
    vertices: usize,
    closure: HashMap<(VertexId, VertexId), Vec<MrId>>,
    catalog: MrCatalog,
    stats: EtcStats,
    /// Construction-time generation stamp (see [`Generation`]): minted fresh
    /// by [`EtcIndex::build`] **and** [`EtcIndex::from_bytes`] — the `ETC1`
    /// wire format never carries it — so a stale engine artifact can never
    /// alias a rebuilt or reloaded closure. `Clone` copies the stamp (clones
    /// share content).
    generation: Generation,
}

impl EtcIndex {
    /// Builds the extended transitive closure of `graph`.
    pub fn build(graph: &LabeledGraph, config: &EtcBuildConfig) -> Self {
        assert!(config.k >= 1, "recursive k must be at least 1");
        let started = Instant::now();
        let deadline = config.time_budget.map(|b| started + b);
        let mut closure: HashMap<(VertexId, VertexId), Vec<MrId>> = HashMap::new();
        let mut catalog = MrCatalog::new();
        let mut records = 0usize;
        let mut timed_out = false;

        'roots: for root in graph.vertices() {
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    timed_out = true;
                    break;
                }
            }
            if let Some(max) = config.max_records {
                if records >= max {
                    timed_out = true;
                    break;
                }
            }
            // Phase 1: enumerate all outgoing label sequences of length ≤ k.
            let mut seen: HashSet<(VertexId, Vec<Label>)> = HashSet::new();
            let mut queue: VecDeque<(VertexId, Vec<Label>)> = VecDeque::new();
            let mut frontiers: HashMap<Vec<Label>, Vec<VertexId>> = HashMap::new();
            queue.push_back((root, Vec::new()));
            while let Some((x, seq)) = queue.pop_front() {
                for (y, label) in graph.out_edges(x) {
                    let mut extended = seq.clone();
                    extended.push(label);
                    if !seen.insert((y, extended.clone())) {
                        continue;
                    }
                    let mr_len = minimum_repeat_len(&extended);
                    if mr_len <= config.k {
                        let mr = catalog.intern(&extended[..mr_len]);
                        if record(&mut closure, root, y, mr) {
                            records += 1;
                        }
                        if extended.len() + mr_len > config.k {
                            match frontiers.entry(extended[..mr_len].to_vec()) {
                                MapEntry::Occupied(mut o) => o.get_mut().push(y),
                                MapEntry::Vacant(v) => {
                                    v.insert(vec![y]);
                                }
                            }
                        }
                    }
                    if extended.len() < config.k {
                        queue.push_back((y, extended));
                    }
                }
            }
            // Phase 2: kernel-guided BFS per candidate, no pruning.
            for (kernel, frontier) in frontiers {
                let klen = kernel.len();
                let mr = catalog.intern(&kernel);
                let mut visited: HashSet<(VertexId, usize)> = HashSet::new();
                let mut queue: VecDeque<(VertexId, usize)> = VecDeque::new();
                for v in frontier {
                    if visited.insert((v, 0)) {
                        queue.push_back((v, 0));
                    }
                }
                let mut steps = 0u32;
                while let Some((x, state)) = queue.pop_front() {
                    steps += 1;
                    if steps.is_multiple_of(4096) {
                        if let Some(deadline) = deadline {
                            if Instant::now() >= deadline {
                                timed_out = true;
                                break 'roots;
                            }
                        }
                    }
                    let expected = kernel[state];
                    for (y, label) in graph.out_edges(x) {
                        if label != expected {
                            continue;
                        }
                        let next = (state + 1) % klen;
                        if !visited.insert((y, next)) {
                            continue;
                        }
                        if next == 0 && record(&mut closure, root, y, mr) {
                            records += 1;
                        }
                        queue.push_back((y, next));
                    }
                }
            }
        }

        let pairs = closure.len();
        EtcIndex {
            k: config.k,
            vertices: graph.vertex_count(),
            closure,
            catalog,
            stats: EtcStats {
                duration: started.elapsed(),
                records,
                pairs,
                timed_out,
            },
            generation: Generation::fresh(),
        }
    }

    /// The generation stamp minted when this closure was constructed (fresh
    /// on every build **and** every deserialization).
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// The recursive `k` the closure supports.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The catalog of minimum repeats referenced by the closure.
    pub fn catalog(&self) -> &MrCatalog {
        &self.catalog
    }

    /// Number of vertices of the indexed graph.
    pub fn vertex_count(&self) -> usize {
        self.vertices
    }

    /// Answers an RLC query by hash lookup.
    pub fn query(&self, query: &RlcQuery) -> bool {
        assert!(
            query.constraint.len() <= self.k,
            "constraint longer than the closure's recursive k"
        );
        let mr = match self.catalog.resolve(&query.constraint) {
            Some(mr) => mr,
            None => return false,
        };
        self.query_mr(query.source, query.target, mr)
    }

    /// Answers `(s, t, mr+)` for an already-resolved minimum repeat — the
    /// execute half of the engine layer's prepare/execute split (the
    /// resolution against [`EtcIndex::catalog`] happens once at prepare
    /// time).
    pub fn query_mr(&self, source: VertexId, target: VertexId, mr: MrId) -> bool {
        self.closure
            .get(&(source, target))
            .map(|mrs| mrs.contains(&mr))
            .unwrap_or(false)
    }

    /// Build statistics.
    pub fn stats(&self) -> &EtcStats {
        &self.stats
    }

    /// Number of `(u, v, MR)` records stored.
    pub fn record_count(&self) -> usize {
        self.stats.records
    }

    /// Estimated memory footprint in bytes: hash-map bucket overhead plus the
    /// stored keys and MR lists (matching how the paper sizes its Java
    /// hashmap-of-lists ETC implementation, scaled to this representation).
    pub fn memory_bytes(&self) -> usize {
        let per_pair =
            std::mem::size_of::<(VertexId, VertexId)>() + std::mem::size_of::<Vec<MrId>>() + 16; // hash-map bucket & control overhead
        self.closure.len() * per_pair
            + self.stats.records * std::mem::size_of::<MrId>()
            + self.catalog.memory_bytes()
    }

    /// Serializes the closure to a compact binary blob (magic `"ETC1"`).
    ///
    /// Layout (all integers little-endian): header (`k` as `u32`, vertex
    /// count as `u64`, catalog size as `u64`, pair count as `u64`, the
    /// timed-out flag as one byte), the
    /// catalog sequences (`u16` length + `u16` labels each), then per pair
    /// `u32` source, `u32` target, `u32` MR count and the `u32` MR ids.
    /// Pairs are written in sorted order so equal closures serialize to
    /// identical bytes. Returns an error instead of silently truncating
    /// when a field exceeds its on-disk width.
    pub fn try_to_bytes(&self) -> Result<Vec<u8>, String> {
        use bytes::BufMut;
        let mut buf = Vec::with_capacity(32 + self.stats.records * 4 + self.closure.len() * 12);
        buf.put_u32_le(ETC_MAGIC);
        buf.put_u32_le(
            u32::try_from(self.k).map_err(|_| format!("recursive k {} exceeds u32", self.k))?,
        );
        buf.put_u64_le(self.vertices as u64);
        buf.put_u64_le(self.catalog.len() as u64);
        buf.put_u64_le(self.closure.len() as u64);
        buf.put_u8(self.stats.timed_out as u8);
        for (id, seq) in self.catalog.iter() {
            let len = u16::try_from(seq.len()).map_err(|_| {
                format!(
                    "catalog sequence {} has {} labels, exceeding the u16 length field",
                    id.0,
                    seq.len()
                )
            })?;
            buf.put_u16_le(len);
            for label in seq {
                buf.put_u16_le(label.0);
            }
        }
        let mut pairs: Vec<(&(VertexId, VertexId), &Vec<MrId>)> = self.closure.iter().collect();
        pairs.sort_unstable_by_key(|(pair, _)| **pair);
        for (&(source, target), mrs) in pairs {
            buf.put_u32_le(source);
            buf.put_u32_le(target);
            let count = u32::try_from(mrs.len()).map_err(|_| {
                format!(
                    "pair ({source}, {target}) has {} minimum repeats, exceeding the u32 \
                     count field",
                    mrs.len()
                )
            })?;
            buf.put_u32_le(count);
            for mr in mrs {
                buf.put_u32_le(mr.0);
            }
        }
        Ok(buf)
    }

    /// Deserializes a closure produced by [`EtcIndex::try_to_bytes`].
    ///
    /// Every structural invariant is validated before use, with the same
    /// corruption-blob treatment as `RlcIndex::from_bytes`: untrusted size
    /// fields are bounded by the bytes actually present (division form, no
    /// multiplication overflow), catalog sequences must be distinct minimum
    /// repeats, vertex ids must be in range, MR references must resolve, MR
    /// lists must be duplicate-free, pairs must be unique, and trailing
    /// bytes are rejected.
    pub fn from_bytes(data: &[u8]) -> Result<Self, String> {
        use bytes::Buf;
        let mut buf = data;
        let corrupt = |what: &str| -> String {
            format!("truncated or corrupt ETC data while reading {what}")
        };
        let check = |ok: bool, what: &str| -> Result<(), String> {
            if ok {
                Ok(())
            } else {
                Err(corrupt(what))
            }
        };
        check(buf.remaining() >= 33, "header")?;
        let magic = buf.get_u32_le();
        if magic != ETC_MAGIC {
            return Err(format!("bad magic {magic:#x}, not an ETC blob"));
        }
        let k = buf.get_u32_le() as usize;
        if k == 0 {
            return Err("corrupt ETC data: recursive k must be at least 1".to_owned());
        }
        let vertices = usize::try_from(buf.get_u64_le())
            .map_err(|_| "corrupt ETC data: vertex count exceeds usize".to_owned())?;
        if vertices > u32::MAX as usize {
            return Err("corrupt ETC data: vertex count exceeds the u32 id range".to_owned());
        }
        let catalog_len = usize::try_from(buf.get_u64_le())
            .map_err(|_| "corrupt ETC data: catalog size exceeds usize".to_owned())?;
        let pair_count = usize::try_from(buf.get_u64_le())
            .map_err(|_| "corrupt ETC data: pair count exceeds usize".to_owned())?;
        let timed_out = match buf.get_u8() {
            0 => false,
            1 => true,
            other => {
                return Err(format!(
                    "corrupt ETC data: timed-out flag must be 0 or 1, found {other}"
                ))
            }
        };
        let catalog_len = rlc_graph::checked_len(catalog_len, 2, buf.remaining())
            .map_err(|_| corrupt("catalog"))?;
        let mut catalog = MrCatalog::new();
        for i in 0..catalog_len {
            check(buf.remaining() >= 2, "catalog entry length")?;
            let len = buf.get_u16_le() as usize;
            check(buf.remaining() >= 2 * len, "catalog entry")?;
            let seq: Vec<Label> = (0..len).map(|_| Label(buf.get_u16_le())).collect();
            if !rlc_core::repeats::is_minimum_repeat(&seq) {
                return Err(format!(
                    "corrupt ETC data: catalog sequence {i} is not a minimum repeat"
                ));
            }
            if seq.len() > k {
                return Err(format!(
                    "corrupt ETC data: catalog sequence {i} has {len} labels but k = {k}"
                ));
            }
            if catalog.resolve(&seq).is_some() {
                return Err(format!(
                    "corrupt ETC data: catalog sequence {i} duplicates an earlier sequence"
                ));
            }
            catalog.intern(&seq);
        }
        let pair_count = rlc_graph::checked_len(pair_count, 12, buf.remaining())
            .map_err(|_| corrupt("pair table"))?;
        let mut closure: HashMap<(VertexId, VertexId), Vec<MrId>> =
            HashMap::with_capacity(pair_count);
        let mut records = 0usize;
        for _ in 0..pair_count {
            check(buf.remaining() >= 12, "pair header")?;
            let source = buf.get_u32_le();
            let target = buf.get_u32_le();
            for id in [source, target] {
                if id as usize >= vertices {
                    return Err(format!(
                        "corrupt ETC data: vertex id {id} out of range for {vertices} vertices"
                    ));
                }
            }
            let count = buf.get_u32_le() as usize;
            let count = rlc_graph::checked_len(count, 4, buf.remaining())
                .map_err(|_| corrupt("pair MR list"))?;
            let mut mrs = Vec::with_capacity(count);
            for _ in 0..count {
                let mr = MrId(buf.get_u32_le());
                if mr.index() >= catalog_len {
                    return Err(format!(
                        "corrupt ETC data: pair ({source}, {target}) references unknown \
                         minimum repeat {}",
                        mr.0
                    ));
                }
                if mrs.contains(&mr) {
                    return Err(format!(
                        "corrupt ETC data: pair ({source}, {target}) lists minimum repeat {} \
                         twice",
                        mr.0
                    ));
                }
                mrs.push(mr);
            }
            records += mrs.len();
            if closure.insert((source, target), mrs).is_some() {
                return Err(format!(
                    "corrupt ETC data: pair ({source}, {target}) appears twice"
                ));
            }
        }
        if buf.remaining() > 0 {
            return Err(format!(
                "corrupt ETC data: {} trailing bytes after the last pair",
                buf.remaining()
            ));
        }
        let pairs = closure.len();
        Ok(EtcIndex {
            k,
            vertices,
            closure,
            catalog,
            stats: EtcStats {
                duration: Duration::ZERO,
                records,
                pairs,
                timed_out,
            },
            // A deserialized closure is a new index structure: artifacts
            // resolved against whatever produced the blob must re-prepare.
            generation: Generation::fresh(),
        })
    }
}

/// Binary format magic of [`EtcIndex::try_to_bytes`] ("ETC1").
const ETC_MAGIC: u32 = 0x4554_4331;

fn record(
    closure: &mut HashMap<(VertexId, VertexId), Vec<MrId>>,
    source: VertexId,
    target: VertexId,
    mr: MrId,
) -> bool {
    let mrs = closure.entry((source, target)).or_default();
    if mrs.contains(&mr) {
        false
    } else {
        mrs.push(mr);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_query;
    use rlc_core::repeats::enumerate_minimum_repeats;
    use rlc_core::{build_index, BuildConfig};
    use rlc_graph::examples::{fig1_graph, fig2_graph};
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};

    #[test]
    fn fig2_example_queries() {
        let g = fig2_graph();
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let q1 = RlcQuery::from_names(&g, "v3", "v6", &["l2", "l1"]).unwrap();
        assert!(etc.query(&q1));
        let q3 = RlcQuery::from_names(&g, "v1", "v3", &["l1"]).unwrap();
        assert!(!etc.query(&q3));
        assert!(etc.record_count() > 0);
        assert!(etc.memory_bytes() > 0);
        assert!(!etc.stats().timed_out);
    }

    #[test]
    fn agrees_with_online_bfs_on_fig1() {
        let g = fig1_graph();
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let all_mrs = enumerate_minimum_repeats(g.label_count(), 2);
        for s in g.vertices() {
            for t in g.vertices() {
                for mr in &all_mrs {
                    let q = RlcQuery::new(s, t, mr.clone()).unwrap();
                    assert_eq!(bfs_query(&g, &q), etc.query(&q), "({s},{t},{mr:?})");
                }
            }
        }
    }

    #[test]
    fn agrees_with_rlc_index_on_random_graph() {
        let g = erdos_renyi(&SyntheticConfig::new(70, 3.0, 3, 21));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let (rlc, _) = build_index(&g, &BuildConfig::new(2));
        let all_mrs = enumerate_minimum_repeats(3, 2);
        for s in (0..g.vertex_count() as u32).step_by(5) {
            for t in (0..g.vertex_count() as u32).step_by(7) {
                for mr in &all_mrs {
                    let q = RlcQuery::new(s, t, mr.clone()).unwrap();
                    assert_eq!(etc.query(&q), rlc.query(&q), "({s},{t},{mr:?})");
                }
            }
        }
    }

    #[test]
    fn etc_is_larger_than_rlc_index() {
        // The whole point of the RLC index (Table IV): the closure records
        // one entry per reachable pair and MR, the index only per hub.
        let g = erdos_renyi(&SyntheticConfig::new(150, 4.0, 4, 8));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let (rlc, _) = build_index(&g, &BuildConfig::new(2));
        assert!(
            etc.record_count() > rlc.entry_count(),
            "ETC ({}) should store more records than the RLC index ({})",
            etc.record_count(),
            rlc.entry_count()
        );
    }

    #[test]
    fn record_budget_truncates_build() {
        let g = erdos_renyi(&SyntheticConfig::new(200, 4.0, 4, 9));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2).with_max_records(10));
        assert!(etc.stats().timed_out);
    }

    #[test]
    fn time_budget_truncates_build() {
        let g = erdos_renyi(&SyntheticConfig::new(2000, 5.0, 4, 9));
        let etc = EtcIndex::build(
            &g,
            &EtcBuildConfig::new(2).with_time_budget(Duration::from_nanos(1)),
        );
        assert!(etc.stats().timed_out);
    }

    #[test]
    fn unknown_constraint_is_false() {
        let g = fig2_graph();
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let q = RlcQuery::new(0, 1, vec![Label(42)]).unwrap();
        assert!(!etc.query(&q));
    }

    #[test]
    fn binary_round_trip_preserves_every_answer() {
        let g = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 77));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let blob = etc.try_to_bytes().unwrap();
        let restored = EtcIndex::from_bytes(&blob).unwrap();
        assert_eq!(restored.k(), etc.k());
        assert_eq!(restored.vertex_count(), etc.vertex_count());
        assert_eq!(restored.record_count(), etc.record_count());
        assert!(!restored.stats().timed_out);
        let all_mrs = enumerate_minimum_repeats(3, 2);
        for s in g.vertices() {
            for t in g.vertices() {
                for mr in &all_mrs {
                    let q = RlcQuery::new(s, t, mr.clone()).unwrap();
                    assert_eq!(etc.query(&q), restored.query(&q), "({s},{t},{mr:?})");
                }
            }
        }
        // Serialization is canonical: re-serializing the restored closure
        // yields the same bytes.
        assert_eq!(restored.try_to_bytes().unwrap(), blob);
    }

    #[test]
    fn deserialized_closures_get_fresh_generations() {
        // The ETC1 wire format never carries the generation: every
        // deserialization mints a fresh one, and the blob bytes are
        // independent of the source's stamp.
        let g = fig2_graph();
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let blob = etc.try_to_bytes().unwrap();
        let once = EtcIndex::from_bytes(&blob).unwrap();
        let twice = EtcIndex::from_bytes(&blob).unwrap();
        assert_ne!(once.generation(), etc.generation());
        assert_ne!(twice.generation(), etc.generation());
        assert_ne!(once.generation(), twice.generation());
        assert_eq!(once.try_to_bytes().unwrap(), blob);
        assert_eq!(etc.clone().generation(), etc.generation());
    }

    #[test]
    fn timed_out_flag_survives_the_round_trip() {
        let g = erdos_renyi(&SyntheticConfig::new(200, 4.0, 4, 9));
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2).with_max_records(10));
        assert!(etc.stats().timed_out);
        let restored = EtcIndex::from_bytes(&etc.try_to_bytes().unwrap()).unwrap();
        assert!(restored.stats().timed_out);
    }

    #[test]
    fn corrupt_blobs_are_rejected_with_descriptive_errors() {
        let g = fig2_graph();
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let blob = etc.try_to_bytes().unwrap();

        // Truncations at every prefix length must error, never panic.
        for len in 0..blob.len() {
            assert!(EtcIndex::from_bytes(&blob[..len]).is_err(), "prefix {len}");
        }

        // Bad magic.
        let mut bad = blob.clone();
        bad[0] ^= 0xFF;
        assert!(EtcIndex::from_bytes(&bad).unwrap_err().contains("magic"));

        // k = 0.
        let mut bad = blob.clone();
        bad[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(EtcIndex::from_bytes(&bad).unwrap_err().contains("k"));

        // Oversized catalog count: must be caught by the division-form bound
        // before any allocation.
        let mut bad = blob.clone();
        bad[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(EtcIndex::from_bytes(&bad).is_err());

        // Oversized pair count.
        let mut bad = blob.clone();
        bad[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(EtcIndex::from_bytes(&bad).is_err());

        // Invalid timed-out flag.
        let mut bad = blob.clone();
        bad[32] = 7;
        assert!(EtcIndex::from_bytes(&bad)
            .unwrap_err()
            .contains("timed-out"));

        // Trailing bytes.
        let mut bad = blob.clone();
        bad.push(0);
        assert!(EtcIndex::from_bytes(&bad).unwrap_err().contains("trailing"));
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let g = fig2_graph();
        let etc = EtcIndex::build(&g, &EtcBuildConfig::new(2));
        let blob = etc.try_to_bytes().unwrap();
        // Shrink the declared vertex count to 1: every stored pair with a
        // vertex id >= 1 must now be rejected.
        let mut bad = blob.clone();
        bad[8..16].copy_from_slice(&1u64.to_le_bytes());
        assert!(EtcIndex::from_bytes(&bad)
            .unwrap_err()
            .contains("out of range"));
        // Shrink the catalog count to 0 while keeping the pair table: MR
        // references must fail to resolve... unless the catalog bytes are
        // reinterpreted as pairs first, which still errors structurally.
        let mut bad = blob;
        bad[16..24].copy_from_slice(&0u64.to_le_bytes());
        assert!(EtcIndex::from_bytes(&bad).is_err());
    }
}
