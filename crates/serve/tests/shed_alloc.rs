//! Proof that the load-shedding path performs **zero** heap allocations.
//!
//! An overloaded server must be able to answer "go away" without asking
//! the allocator for anything — if shedding itself allocated, a memory
//! squeeze would make the shedding path the thing that OOMs. The claim is
//! counter-based, not heuristic: this binary installs the counting global
//! allocator from `rlc_core::kernel::alloc_count` (the workspace's one
//! sanctioned `unsafe` module), snapshots the allocation count around the
//! exact production shed function, and asserts the delta is zero.
//!
//! The file holds a single `#[test]` so no concurrent test thread can
//! allocate during the measured window.

use rlc_core::kernel::alloc_count::{allocation_count, CountingAllocator};
use rlc_serve::http;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn shed_responses_allocate_nothing_per_request() {
    // Everything allocating happens up front, on this one thread: bind a
    // loopback pair so the writes go to a real TCP socket, exactly as the
    // listener sheds.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let mut client = TcpStream::connect(addr).expect("connect");
    let (mut server_side, _) = listener.accept().expect("accept");

    // Warm-up: first writes may lazily initialize socket state.
    http::write_static_response(&mut server_side, http::SHED_OVERLOAD);
    http::write_static_response(&mut server_side, http::DEADLINE_EXCEEDED);

    // The measured window: many shed responses on one healthy socket. The
    // responses total well under the kernel socket buffer, so no write
    // blocks and no allocation can hide behind a retry path.
    const ROUNDS: usize = 100;
    let before = allocation_count();
    for _ in 0..ROUNDS {
        http::write_static_response(&mut server_side, http::SHED_OVERLOAD);
        http::write_static_response(&mut server_side, http::DEADLINE_EXCEEDED);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "the shed path must not allocate (counted {} allocations over {} responses)",
        after - before,
        2 * ROUNDS
    );

    // The listener's full shed path (write + drain of the unread request)
    // must be just as allocation-free. Pre-send the "requests" so every
    // drain read returns immediately instead of waiting out its timeout.
    const DRAIN_ROUNDS: usize = 10;
    client
        .write_all(&[b'q'; DRAIN_ROUNDS * 1024])
        .expect("pre-send drained request bytes");
    let before = allocation_count();
    for _ in 0..DRAIN_ROUNDS {
        http::drain_and_shed(&mut server_side, http::SHED_OVERLOAD);
    }
    let after = allocation_count();
    assert_eq!(after - before, 0, "drain_and_shed must not allocate");

    // Sanity: the counting allocator is actually installed and counting —
    // otherwise the zero above would be vacuous.
    let before_alloc = allocation_count();
    let sink = vec![0u8; 4096];
    assert!(
        allocation_count() > before_alloc,
        "the counting allocator must observe a Vec allocation"
    );
    drop(sink);

    // And the bytes really went out on the wire, preformatted and intact.
    drop(server_side);
    let mut received = Vec::new();
    client
        .read_to_end(&mut received)
        .expect("read shed responses");
    let expected_len = (ROUNDS + 1) * (http::SHED_OVERLOAD.len() + http::DEADLINE_EXCEEDED.len())
        + DRAIN_ROUNDS * http::SHED_OVERLOAD.len();
    assert_eq!(received.len(), expected_len);
    assert!(received.starts_with(http::SHED_OVERLOAD));
}
