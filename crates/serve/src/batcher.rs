//! The micro-batching window: coalescing in-flight single queries.
//!
//! Workers handling `POST /query` do not evaluate; they park the query in
//! the batcher's pending list and block on a per-query outcome slot. A
//! dedicated batcher thread wakes on the first arrival, sleeps for the
//! configured window ([`crate::ServeConfig::batch_window`]) so concurrent
//! requests pile on, then takes the whole list and executes it as **one**
//! [`BatchPlan`] through [`BatchPlan::execute_cached`] — so concurrent
//! same-constraint requests prepare once (or hit the shared
//! [`PlanCache`]), and grouped traversals are shared exactly as they are
//! for explicit `POST /batch` requests.
//!
//! Every batch snapshots the [`crate::IndexSlot`] once; all its answers are
//! stamped with that snapshot's generation, which is what lets clients
//! prove an `/admin/reload` never produced a torn batch (half old index,
//! half new).
//!
//! A worker abandons its slot when the request deadline passes (the
//! batcher still fulfills the slot later; nobody is listening — the `Arc`
//! keeps it sound) and answers the preformatted `504`.

use crate::lock_recover;
use crate::metrics::{Counter, ServerMetrics};
use crate::obs::ServeObs;
use crate::swap::IndexSlot;
use rlc_core::{BatchPlan, PlanCache, Query, QueryError};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One answered query: the evaluation outcome plus the generation stamp of
/// the epoch it was answered under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchAnswer {
    /// The evaluation result (`Err` for constraint rejections).
    pub answer: Result<bool, QueryError>,
    /// Generation of the index snapshot that produced the answer.
    pub generation: u64,
}

/// The rendezvous slot one submitted query waits on.
#[derive(Default)]
struct OutcomeSlot {
    done: Mutex<Option<BatchAnswer>>,
    ready: Condvar,
}

impl OutcomeSlot {
    fn fulfill(&self, answer: BatchAnswer) {
        *lock_recover(&self.done) = Some(answer);
        self.ready.notify_all();
    }

    /// Waits for the answer until `deadline`; `None` means the deadline
    /// passed first.
    fn wait_until(&self, deadline: Instant) -> Option<BatchAnswer> {
        let mut done = lock_recover(&self.done);
        loop {
            if let Some(answer) = done.take() {
                return Some(answer);
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (guard, _) = self
                .ready
                .wait_timeout(done, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            done = guard;
        }
    }
}

/// A query parked in the pending list.
struct Pending {
    query: Query,
    slot: Arc<OutcomeSlot>,
}

/// State shared between submitters and the batcher thread.
struct BatcherState {
    pending: Mutex<Vec<Pending>>,
    arrived: Condvar,
    shutdown: AtomicBool,
}

/// Guard interval for the batcher's idle wait: bounds how long a lost
/// wakeup (or a shutdown raced with a wait) can stall progress.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// The submitting handle workers use (cheaply cloneable).
#[derive(Clone)]
pub struct BatcherClient {
    state: Arc<BatcherState>,
}

impl BatcherClient {
    /// Parks `query` for the next micro-batch and waits for its answer
    /// until `deadline`. `None` means the deadline passed — the caller
    /// answers `504` and walks away; the eventual fulfillment goes nowhere.
    pub fn submit(&self, query: Query, deadline: Instant) -> Option<BatchAnswer> {
        let slot = Arc::new(OutcomeSlot::default());
        {
            let mut pending = lock_recover(&self.state.pending);
            pending.push(Pending {
                query,
                slot: Arc::clone(&slot),
            });
        }
        self.state.arrived.notify_one();
        slot.wait_until(deadline)
    }
}

/// The batcher thread handle, owned by the [`crate::Server`].
pub struct MicroBatcher {
    state: Arc<BatcherState>,
    thread: Option<JoinHandle<()>>,
}

impl MicroBatcher {
    /// Spawns the batcher thread. Batches snapshot `slot`, execute against
    /// `cache`, and account into `metrics` and `obs` (window/execute
    /// latency; sampled batches leave EXPLAIN traces in the journal).
    pub fn start(
        window: Duration,
        slot: Arc<IndexSlot>,
        cache: Arc<PlanCache>,
        metrics: Arc<ServerMetrics>,
        obs: Arc<ServeObs>,
    ) -> io::Result<(MicroBatcher, BatcherClient)> {
        let state = Arc::new(BatcherState {
            pending: Mutex::new(Vec::new()),
            arrived: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let thread = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("rlc-serve-batcher".to_owned())
                .spawn(move || batcher_loop(&state, window, &slot, &cache, &metrics, &obs))?
        };
        let client = BatcherClient {
            state: Arc::clone(&state),
        };
        Ok((
            MicroBatcher {
                state,
                thread: Some(thread),
            },
            client,
        ))
    }

    /// Stops the batcher after it drains every pending query. Callers must
    /// first stop all submitters (the server joins its workers before
    /// this), so the drain is finite.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.arrived.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The batcher thread: wait for arrivals, give the window a chance to
/// coalesce more, execute the batch on one epoch snapshot, fulfill.
fn batcher_loop(
    state: &BatcherState,
    window: Duration,
    slot: &IndexSlot,
    cache: &PlanCache,
    metrics: &ServerMetrics,
    obs: &ServeObs,
) {
    loop {
        // Phase 1: wait for the first arrival (or an empty-queue shutdown).
        {
            let mut pending = lock_recover(&state.pending);
            loop {
                if !pending.is_empty() {
                    break;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = state
                    .arrived
                    .wait_timeout(pending, IDLE_POLL)
                    .unwrap_or_else(PoisonError::into_inner);
                pending = guard;
            }
        }
        let window_started = Instant::now();
        // Phase 2: the micro-batch window — let concurrent workers pile
        // their queries on before the batch is sealed.
        if !window.is_zero() && !state.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(window);
        }
        let batch: Vec<Pending> = std::mem::take(&mut *lock_recover(&state.pending));
        if batch.is_empty() {
            continue;
        }
        obs.record_batch_window(window_started.elapsed());
        // Phase 3: one epoch snapshot, one BatchPlan, one generation stamp
        // for every answer in the batch. A sampled batch executes through
        // the EXPLAIN path — identical answers (the differential harness
        // asserts it), plus a plan trace for the journal.
        let epoch = slot.snapshot();
        let generation = epoch.generation().value();
        let queries: Vec<Query> = batch.iter().map(|p| p.query.clone()).collect();
        let execute_started = Instant::now();
        let answers = if obs.should_explain() {
            let (answers, mut trace) = epoch.with_engine(|engine| {
                BatchPlan::new(&queries).execute_explained(engine, Some(cache))
            });
            trace
                .attr("origin", "microbatch")
                .attr("generation", generation);
            obs.push_trace(trace);
            answers
        } else {
            epoch.with_engine(|engine| BatchPlan::new(&queries).execute_cached(engine, cache))
        };
        obs.record_execute(execute_started.elapsed());
        metrics.bump(Counter::Microbatches);
        metrics.add(Counter::MicrobatchedQueries, batch.len() as u64);
        for (pending, answer) in batch.into_iter().zip(answers) {
            pending.slot.fulfill(BatchAnswer { answer, generation });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swap::Epoch;
    use rlc_core::{build_index, BuildConfig, Constraint};
    use rlc_graph::examples::fig2_graph;
    use rlc_graph::{Label, LabeledGraph};

    fn serving_slot(k: usize) -> (Arc<LabeledGraph>, Arc<IndexSlot>) {
        let graph = Arc::new(fig2_graph());
        let (index, _) = build_index(&graph, &BuildConfig::new(k));
        let slot = Arc::new(IndexSlot::new(Epoch::rlc(Arc::clone(&graph), index)));
        (graph, slot)
    }

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    /// Journal-less observability for tests that don't assert on traces.
    fn quiet_obs() -> Arc<ServeObs> {
        Arc::new(ServeObs::new(0, 0))
    }

    #[test]
    fn concurrent_submissions_coalesce_and_answer_correctly() {
        let (graph, slot) = serving_slot(2);
        let cache = Arc::new(PlanCache::new());
        let metrics = Arc::new(ServerMetrics::new());
        let (batcher, client) = MicroBatcher::start(
            Duration::from_millis(5),
            Arc::clone(&slot),
            Arc::clone(&cache),
            Arc::clone(&metrics),
            quiet_obs(),
        )
        .unwrap();
        let queries: Vec<Query> = (0..12u32)
            .map(|i| Query::rlc(i % 6, (i * 5 + 1) % 6, vec![Label(1)]).unwrap())
            .collect();
        let expected: Vec<Result<bool, QueryError>> = {
            let epoch = slot.snapshot();
            epoch.with_engine(|engine| engine.evaluate_batch(&queries))
        };
        let generation = slot.generation_value();
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .iter()
                .map(|q| {
                    let client = client.clone();
                    let q = q.clone();
                    scope.spawn(move || client.submit(q, far_deadline()))
                })
                .collect();
            for (handle, expected) in handles.into_iter().zip(&expected) {
                let got = handle.join().unwrap().expect("deadline is far away");
                assert_eq!(&got.answer, expected);
                assert_eq!(got.generation, generation);
            }
        });
        // All twelve queries share one constraint: however many batches the
        // scheduler produced, the cache compiled the plan exactly once.
        assert_eq!(cache.stats().misses, 1);
        assert!(metrics.get(Counter::Microbatches) >= 1);
        assert_eq!(metrics.get(Counter::MicrobatchedQueries), 12);
        assert!(
            metrics.get(Counter::Microbatches) <= 12,
            "batches never exceed queries"
        );
        batcher.shutdown();
        drop(graph);
    }

    #[test]
    fn rejections_flow_back_as_answers_not_panics() {
        let (_graph, slot) = serving_slot(2);
        let cache = Arc::new(PlanCache::new());
        let metrics = Arc::new(ServerMetrics::new());
        let (batcher, client) =
            MicroBatcher::start(Duration::ZERO, slot, cache, metrics, quiet_obs()).unwrap();
        // Block of length 3 against k = 2: a deterministic rejection.
        let constraint = Constraint::new(vec![vec![Label(0), Label(1), Label(2)]]).unwrap();
        let answer = client
            .submit(Query::new(0, 5, constraint), far_deadline())
            .expect("deadline is far away");
        assert!(matches!(
            answer.answer,
            Err(QueryError::BlockTooLong { len: 3, k: 2, .. })
        ));
        batcher.shutdown();
    }

    #[test]
    fn sampled_batches_leave_traces_with_identical_answers() {
        let (_graph, slot) = serving_slot(2);
        let cache = Arc::new(PlanCache::new());
        let metrics = Arc::new(ServerMetrics::new());
        let obs = Arc::new(ServeObs::new(8, 1)); // trace every batch
        let (batcher, client) = MicroBatcher::start(
            Duration::ZERO,
            Arc::clone(&slot),
            Arc::clone(&cache),
            metrics,
            Arc::clone(&obs),
        )
        .unwrap();
        let query = Query::rlc(0, 5, vec![Label(1)]).unwrap();
        let expected = slot
            .snapshot()
            .with_engine(|engine| rlc_core::ReachabilityEngine::evaluate(engine, &query));
        let got = client
            .submit(query, far_deadline())
            .expect("deadline is far away");
        assert_eq!(got.answer, expected, "the EXPLAIN path changes nothing");
        batcher.shutdown();
        let traces = obs.journal().last(1);
        assert_eq!(traces.len(), 1, "the sampled batch left its trace");
        assert_eq!(traces[0].find_attr("origin"), Some("microbatch"));
        assert_eq!(
            traces[0].find_attr("generation"),
            Some(format!("{}", slot.generation_value()).as_str())
        );
        assert!(
            traces[0].find_attr_deep("cache_hit").is_some(),
            "per-query nodes carry the cache decision"
        );
    }

    #[test]
    fn a_passed_deadline_returns_none_immediately() {
        let (_graph, slot) = serving_slot(2);
        let cache = Arc::new(PlanCache::new());
        let metrics = Arc::new(ServerMetrics::new());
        let (batcher, client) =
            MicroBatcher::start(Duration::from_millis(1), slot, cache, metrics, quiet_obs())
                .unwrap();
        let query = Query::rlc(0, 5, vec![Label(1)]).unwrap();
        // A deadline already in the past: the submitter must not hang on
        // the window, it answers None (→ 504) right away.
        let started = Instant::now();
        let outcome = client.submit(query, Instant::now() - Duration::from_millis(1));
        assert!(outcome.is_none());
        assert!(started.elapsed() < Duration::from_secs(1));
        batcher.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_queries() {
        let (_graph, slot) = serving_slot(2);
        let cache = Arc::new(PlanCache::new());
        let metrics = Arc::new(ServerMetrics::new());
        let (batcher, client) = MicroBatcher::start(
            Duration::from_millis(50),
            slot,
            cache,
            Arc::clone(&metrics),
            quiet_obs(),
        )
        .unwrap();
        // Park a query, then shut down while the batcher is (likely) mid
        // window: the answer must still arrive before shutdown returns.
        let waiter = {
            let client = client.clone();
            std::thread::spawn(move || {
                client.submit(Query::rlc(0, 5, vec![Label(1)]).unwrap(), far_deadline())
            })
        };
        // Give the submission a moment to land in the pending list.
        std::thread::sleep(Duration::from_millis(10));
        batcher.shutdown();
        let answered = waiter.join().unwrap();
        assert!(answered.is_some(), "shutdown drained the pending query");
        assert_eq!(metrics.get(Counter::MicrobatchedQueries), 1);
    }
}
