//! Server counters and the `GET /metrics` text exposition.
//!
//! Counters follow the cache's discipline: monotonic `AtomicU64`s bumped
//! with relaxed ordering (no memory is published through them) and read
//! observationally. The queue-depth pair is the one gauge: `queue_depth`
//! tracks jobs currently admitted-but-unfinished and `queue_depth_max`
//! records its high-water mark — the bench harness asserts the high-water
//! mark stays within the configured bound to prove shedding (not queue
//! growth) absorbs overload.

use rlc_core::CacheStats;
use rlc_obs::expo;
use std::sync::atomic::{AtomicU64, Ordering};

/// Names of the monotonic server counters (the queue gauges are managed by
/// [`ServerMetrics::queue_enter`]/[`ServerMetrics::queue_leave`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Connections accepted off the listener.
    Accepted,
    /// Responses answered `200`.
    Ok200,
    /// Responses answered `400` (malformed JSON, constraint rejections,
    /// bad framing, failed reloads).
    BadRequest400,
    /// Responses answered `404`.
    NotFound404,
    /// Responses answered `405` (known path, wrong method).
    MethodNotAllowed405,
    /// Responses answered `408` (slow-loris read deadline).
    Timeout408,
    /// Responses answered `413` (declared body over the cap).
    BodyTooLarge413,
    /// Responses answered `431` (head over the cap).
    HeadersTooLarge431,
    /// Connections shed with the preformatted `503` (queue full).
    Shed503,
    /// Requests answered the preformatted `504` (deadline exceeded).
    Deadline504,
    /// Single queries admitted to the micro-batcher.
    Queries,
    /// `POST /batch` requests executed.
    BatchRequests,
    /// Micro-batches executed by the batcher thread.
    Microbatches,
    /// Queries carried by those micro-batches (ratio to `Microbatches` is
    /// the realized coalescing factor).
    MicrobatchedQueries,
    /// Successful `POST /admin/reload` swaps.
    Reloads,
    /// Rejected `POST /admin/reload` blobs.
    ReloadFailures,
}

/// All counters, in exposition order.
const ALL: [(Counter, &str); 16] = [
    (Counter::Accepted, "rlc_serve_accepted_total"),
    (Counter::Ok200, "rlc_serve_ok_total"),
    (Counter::BadRequest400, "rlc_serve_bad_request_total"),
    (Counter::NotFound404, "rlc_serve_not_found_total"),
    (
        Counter::MethodNotAllowed405,
        "rlc_serve_method_not_allowed_total",
    ),
    (Counter::Timeout408, "rlc_serve_read_timeout_total"),
    (Counter::BodyTooLarge413, "rlc_serve_body_too_large_total"),
    (
        Counter::HeadersTooLarge431,
        "rlc_serve_headers_too_large_total",
    ),
    (Counter::Shed503, "rlc_serve_shed_total"),
    (Counter::Deadline504, "rlc_serve_deadline_total"),
    (Counter::Queries, "rlc_serve_queries_total"),
    (Counter::BatchRequests, "rlc_serve_batch_requests_total"),
    (Counter::Microbatches, "rlc_serve_microbatches_total"),
    (
        Counter::MicrobatchedQueries,
        "rlc_serve_microbatched_queries_total",
    ),
    (Counter::Reloads, "rlc_serve_reloads_total"),
    (Counter::ReloadFailures, "rlc_serve_reload_failures_total"),
];

/// Shared counter block of one [`crate::Server`].
#[derive(Debug, Default)]
pub struct ServerMetrics {
    counters: [AtomicU64; ALL.len()],
    queue_depth: AtomicU64,
    queue_depth_max: AtomicU64,
}

impl ServerMetrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    fn cell(&self, which: Counter) -> &AtomicU64 {
        // Position of `which` in the exposition table; the table is the
        // single source of truth for both rendering and storage layout.
        let idx = ALL
            .iter()
            .position(|(c, _)| *c == which)
            .unwrap_or_default();
        &self.counters[idx]
    }

    /// Increments `which` by one.
    pub fn bump(&self, which: Counter) {
        self.add(which, 1);
    }

    /// Increments `which` by `n`.
    pub fn add(&self, which: Counter, n: u64) {
        // rlc-analyze: allow(atomic-pairing) — monotonic stats counter; no memory is published through it
        self.cell(which).fetch_add(n, Ordering::Relaxed);
    }

    /// Reads `which` observationally.
    pub fn get(&self, which: Counter) -> u64 {
        // rlc-analyze: allow(atomic-pairing) — observational stats read; approximate by design
        self.cell(which).load(Ordering::Relaxed)
    }

    /// Records one job admitted to the worker queue, updating the
    /// high-water mark. Called *before* the queue insert so the gauge is an
    /// upper bound on true depth, never an undercount.
    pub fn queue_enter(&self) {
        // rlc-analyze: allow(atomic-pairing) — gauge + high-water mark; observational, no memory published
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        // rlc-analyze: allow(atomic-pairing) — monotonic max of an observational gauge
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a job leaving the queue (picked up by a worker, or bounced
    /// by admission control). Saturates at zero: a spurious extra leave
    /// (a bug, or a restart-raced counter) must read as an empty queue,
    /// not wrap the gauge to `u64::MAX` and poison every later sample.
    pub fn queue_leave(&self) {
        let _ = self
            .queue_depth
            // rlc-analyze: allow(atomic-pairing) — observational gauge decrement, saturating CAS loop
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |depth| {
                Some(depth.saturating_sub(1))
            });
    }

    /// Jobs currently admitted and unfinished.
    pub fn queue_depth(&self) -> u64 {
        // rlc-analyze: allow(atomic-pairing) — observational gauge read
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// High-water mark of [`ServerMetrics::queue_depth`] since start.
    pub fn queue_depth_max(&self) -> u64 {
        // rlc-analyze: allow(atomic-pairing) — observational gauge read
        self.queue_depth_max.load(Ordering::Relaxed)
    }

    /// Appends the server-counter and plan-cache families to an exposition
    /// document: a `# TYPE` declaration per family followed by its sample.
    /// The full `GET /metrics` document — these families plus the index
    /// gauges and latency histograms — is assembled by
    /// [`crate::obs::ServeObs::render_metrics`].
    pub fn write_exposition(&self, out: &mut String, cache: CacheStats, generation: u64) {
        for (counter, name) in ALL {
            expo::write_type(out, name, "counter");
            expo::write_sample(out, name, &[], self.get(counter));
        }
        let gauges = [
            ("rlc_serve_queue_depth", self.queue_depth()),
            ("rlc_serve_queue_depth_max", self.queue_depth_max()),
            ("rlc_serve_generation", generation),
        ];
        for (name, value) in gauges {
            expo::write_type(out, name, "gauge");
            expo::write_sample(out, name, &[], value);
        }
        let cache_counters = [
            ("plan_cache_hits_total", cache.hits),
            ("plan_cache_misses_total", cache.misses),
            ("plan_cache_evictions_total", cache.evictions),
            ("plan_cache_stale_drops_total", cache.stale_drops),
            ("plan_cache_coalesced_total", cache.coalesced),
        ];
        for (name, value) in cache_counters {
            expo::write_type(out, name, "counter");
            expo::write_sample(out, name, &[], value);
        }
        let cache_gauges = [
            ("plan_cache_entries", cache.entries),
            ("plan_cache_bytes", cache.bytes),
        ];
        for (name, value) in cache_gauges {
            expo::write_type(out, name, "gauge");
            expo::write_sample(out, name, &[], value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_counter_has_its_own_cell() {
        let metrics = ServerMetrics::new();
        for (i, (counter, _)) in ALL.iter().enumerate() {
            metrics.add(*counter, i as u64 + 1);
        }
        for (i, (counter, _)) in ALL.iter().enumerate() {
            assert_eq!(metrics.get(*counter), i as u64 + 1);
        }
    }

    #[test]
    fn queue_gauges_track_depth_and_high_water() {
        let metrics = ServerMetrics::new();
        metrics.queue_enter();
        metrics.queue_enter();
        metrics.queue_enter();
        metrics.queue_leave();
        assert_eq!(metrics.queue_depth(), 2);
        assert_eq!(metrics.queue_depth_max(), 3);
        metrics.queue_leave();
        metrics.queue_leave();
        assert_eq!(metrics.queue_depth(), 0);
        assert_eq!(metrics.queue_depth_max(), 3, "the mark is sticky");
    }

    /// Regression: an unpaired `queue_leave` (a bounce double-released, a
    /// bug in a future caller) used to wrap the depth gauge to `u64::MAX`,
    /// after which every `/metrics` scrape reported an 18-quintillion-deep
    /// queue forever. The gauge now saturates at zero.
    #[test]
    fn queue_leave_saturates_at_zero_instead_of_wrapping() {
        let metrics = ServerMetrics::new();
        metrics.queue_leave();
        assert_eq!(metrics.queue_depth(), 0, "no underflow wrap");
        metrics.queue_enter();
        metrics.queue_leave();
        metrics.queue_leave();
        metrics.queue_leave();
        assert_eq!(metrics.queue_depth(), 0);
        metrics.queue_enter();
        assert_eq!(metrics.queue_depth(), 1, "the gauge still counts up");
    }

    #[test]
    fn exposition_declares_every_family_exactly_once() {
        let metrics = ServerMetrics::new();
        metrics.bump(Counter::Accepted);
        let mut text = String::new();
        metrics.write_exposition(&mut text, CacheStats::default(), 42);
        let expo = rlc_obs::expo::parse(&text).expect("counter families validate");
        assert_eq!(expo.value("rlc_serve_accepted_total"), Some(1.0));
        assert_eq!(expo.value("rlc_serve_generation"), Some(42.0));
        assert_eq!(expo.value("plan_cache_hits_total"), Some(0.0));
        // One family per counter, the three server gauges, and the seven
        // plan-cache series — all declared, none twice (parse enforces it).
        assert_eq!(expo.families.len(), ALL.len() + 3 + 7);
        assert_eq!(expo.samples.len(), expo.families.len());
    }
}
