//! Server counters and the `GET /metrics` text exposition.
//!
//! Counters follow the cache's discipline: monotonic `AtomicU64`s bumped
//! with relaxed ordering (no memory is published through them) and read
//! observationally. The queue-depth pair is the one gauge: `queue_depth`
//! tracks jobs currently admitted-but-unfinished and `queue_depth_max`
//! records its high-water mark — the bench harness asserts the high-water
//! mark stays within the configured bound to prove shedding (not queue
//! growth) absorbs overload.

use rlc_core::CacheStats;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Names of the monotonic server counters (the queue gauges are managed by
/// [`ServerMetrics::queue_enter`]/[`ServerMetrics::queue_leave`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Connections accepted off the listener.
    Accepted,
    /// Responses answered `200`.
    Ok200,
    /// Responses answered `400` (malformed JSON, constraint rejections,
    /// bad framing, failed reloads).
    BadRequest400,
    /// Responses answered `404`.
    NotFound404,
    /// Responses answered `405` (known path, wrong method).
    MethodNotAllowed405,
    /// Responses answered `408` (slow-loris read deadline).
    Timeout408,
    /// Responses answered `413` (declared body over the cap).
    BodyTooLarge413,
    /// Responses answered `431` (head over the cap).
    HeadersTooLarge431,
    /// Connections shed with the preformatted `503` (queue full).
    Shed503,
    /// Requests answered the preformatted `504` (deadline exceeded).
    Deadline504,
    /// Single queries admitted to the micro-batcher.
    Queries,
    /// `POST /batch` requests executed.
    BatchRequests,
    /// Micro-batches executed by the batcher thread.
    Microbatches,
    /// Queries carried by those micro-batches (ratio to `Microbatches` is
    /// the realized coalescing factor).
    MicrobatchedQueries,
    /// Successful `POST /admin/reload` swaps.
    Reloads,
    /// Rejected `POST /admin/reload` blobs.
    ReloadFailures,
}

/// All counters, in exposition order.
const ALL: [(Counter, &str); 16] = [
    (Counter::Accepted, "rlc_serve_accepted_total"),
    (Counter::Ok200, "rlc_serve_ok_total"),
    (Counter::BadRequest400, "rlc_serve_bad_request_total"),
    (Counter::NotFound404, "rlc_serve_not_found_total"),
    (
        Counter::MethodNotAllowed405,
        "rlc_serve_method_not_allowed_total",
    ),
    (Counter::Timeout408, "rlc_serve_read_timeout_total"),
    (Counter::BodyTooLarge413, "rlc_serve_body_too_large_total"),
    (
        Counter::HeadersTooLarge431,
        "rlc_serve_headers_too_large_total",
    ),
    (Counter::Shed503, "rlc_serve_shed_total"),
    (Counter::Deadline504, "rlc_serve_deadline_total"),
    (Counter::Queries, "rlc_serve_queries_total"),
    (Counter::BatchRequests, "rlc_serve_batch_requests_total"),
    (Counter::Microbatches, "rlc_serve_microbatches_total"),
    (
        Counter::MicrobatchedQueries,
        "rlc_serve_microbatched_queries_total",
    ),
    (Counter::Reloads, "rlc_serve_reloads_total"),
    (Counter::ReloadFailures, "rlc_serve_reload_failures_total"),
];

/// Shared counter block of one [`crate::Server`].
#[derive(Debug, Default)]
pub struct ServerMetrics {
    counters: [AtomicU64; ALL.len()],
    queue_depth: AtomicU64,
    queue_depth_max: AtomicU64,
}

impl ServerMetrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    fn cell(&self, which: Counter) -> &AtomicU64 {
        // Position of `which` in the exposition table; the table is the
        // single source of truth for both rendering and storage layout.
        let idx = ALL
            .iter()
            .position(|(c, _)| *c == which)
            .unwrap_or_default();
        &self.counters[idx]
    }

    /// Increments `which` by one.
    pub fn bump(&self, which: Counter) {
        self.add(which, 1);
    }

    /// Increments `which` by `n`.
    pub fn add(&self, which: Counter, n: u64) {
        // rlc-analyze: allow(atomic-pairing) — monotonic stats counter; no memory is published through it
        self.cell(which).fetch_add(n, Ordering::Relaxed);
    }

    /// Reads `which` observationally.
    pub fn get(&self, which: Counter) -> u64 {
        // rlc-analyze: allow(atomic-pairing) — observational stats read; approximate by design
        self.cell(which).load(Ordering::Relaxed)
    }

    /// Records one job admitted to the worker queue, updating the
    /// high-water mark. Called *before* the queue insert so the gauge is an
    /// upper bound on true depth, never an undercount.
    pub fn queue_enter(&self) {
        // rlc-analyze: allow(atomic-pairing) — gauge + high-water mark; observational, no memory published
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        // rlc-analyze: allow(atomic-pairing) — monotonic max of an observational gauge
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a job leaving the queue (picked up by a worker, or bounced
    /// by admission control).
    pub fn queue_leave(&self) {
        // rlc-analyze: allow(atomic-pairing) — observational gauge decrement
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Jobs currently admitted and unfinished.
    pub fn queue_depth(&self) -> u64 {
        // rlc-analyze: allow(atomic-pairing) — observational gauge read
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// High-water mark of [`ServerMetrics::queue_depth`] since start.
    pub fn queue_depth_max(&self) -> u64 {
        // rlc-analyze: allow(atomic-pairing) — observational gauge read
        self.queue_depth_max.load(Ordering::Relaxed)
    }

    /// Renders the `GET /metrics` text format: one `name value` line per
    /// counter, then the queue gauges, the serving generation, and the
    /// plan cache's lock-free counter snapshot.
    pub fn render(&self, cache: CacheStats, generation: u64) -> String {
        let mut out = String::with_capacity(1024);
        for (counter, name) in ALL {
            let _ = writeln!(out, "{name} {}", self.get(counter));
        }
        let _ = writeln!(out, "rlc_serve_queue_depth {}", self.queue_depth());
        let _ = writeln!(out, "rlc_serve_queue_depth_max {}", self.queue_depth_max());
        let _ = writeln!(out, "rlc_serve_generation {generation}");
        let _ = writeln!(out, "plan_cache_hits_total {}", cache.hits);
        let _ = writeln!(out, "plan_cache_misses_total {}", cache.misses);
        let _ = writeln!(out, "plan_cache_evictions_total {}", cache.evictions);
        let _ = writeln!(out, "plan_cache_stale_drops_total {}", cache.stale_drops);
        let _ = writeln!(out, "plan_cache_coalesced_total {}", cache.coalesced);
        let _ = writeln!(out, "plan_cache_entries {}", cache.entries);
        let _ = writeln!(out, "plan_cache_bytes {}", cache.bytes);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_counter_has_its_own_cell() {
        let metrics = ServerMetrics::new();
        for (i, (counter, _)) in ALL.iter().enumerate() {
            metrics.add(*counter, i as u64 + 1);
        }
        for (i, (counter, _)) in ALL.iter().enumerate() {
            assert_eq!(metrics.get(*counter), i as u64 + 1);
        }
    }

    #[test]
    fn queue_gauges_track_depth_and_high_water() {
        let metrics = ServerMetrics::new();
        metrics.queue_enter();
        metrics.queue_enter();
        metrics.queue_enter();
        metrics.queue_leave();
        assert_eq!(metrics.queue_depth(), 2);
        assert_eq!(metrics.queue_depth_max(), 3);
        metrics.queue_leave();
        metrics.queue_leave();
        assert_eq!(metrics.queue_depth(), 0);
        assert_eq!(metrics.queue_depth_max(), 3, "the mark is sticky");
    }

    #[test]
    fn render_emits_one_line_per_series() {
        let metrics = ServerMetrics::new();
        metrics.bump(Counter::Accepted);
        let text = metrics.render(CacheStats::default(), 42);
        assert!(text.contains("rlc_serve_accepted_total 1\n"));
        assert!(text.contains("rlc_serve_generation 42\n"));
        assert!(text.contains("plan_cache_hits_total 0\n"));
        assert_eq!(text.lines().count(), ALL.len() + 3 + 7);
        for line in text.lines() {
            let mut parts = line.split(' ');
            assert!(parts.next().is_some_and(|n| !n.is_empty()));
            assert!(parts.next().is_some_and(|v| v.parse::<u64>().is_ok()));
            assert!(parts.next().is_none());
        }
    }
}
