//! `rlc-serve`: a long-running query service over the RLC engines.
//!
//! Everything below is pure std + the workspace's vendored crates — the
//! build environment has no registry access, so the HTTP layer is
//! hand-rolled over [`std::net::TcpListener`] with the same division-form
//! bounds discipline as the binary decoders
//! ([`rlc_graph::checked_len`] caps on header and body sizes, absolute
//! read deadlines against slow-loris clients).
//!
//! ## Architecture
//!
//! ```text
//! TcpListener ──► accept ──► bounded MPSC queue ──► worker pool (N threads)
//!                   │ queue full?                        │ parse + route
//!                   └─► preformatted 503 + Retry-After   ▼
//!                       (allocation-free shed)      micro-batcher
//!                                                        │ window ≤ batch_window
//!                                                        ▼
//!                                       BatchPlan::execute_cached(engine, PlanCache)
//!                                                        ▲
//!                                  IndexSlot (epoch swap, generation stamps)
//! ```
//!
//! * **Admission control** ([`pool`]): a fixed worker pool drains a bounded
//!   queue; when the queue is full the listener *sheds* — it answers with a
//!   preformatted static `503` carrying `Retry-After` and closes, so
//!   overload can never grow memory. Requests that miss their per-request
//!   deadline are answered `504`.
//! * **Micro-batching** ([`batcher`]): single queries rendezvous for up to
//!   [`ServeConfig::batch_window`] and execute as one
//!   [`rlc_core::BatchPlan`] against the shared [`rlc_core::PlanCache`] —
//!   concurrent same-constraint requests prepare once and share grouped
//!   traversals.
//! * **Hot swap** ([`swap`]): the serving index lives in an [`IndexSlot`]
//!   epoch slot. `POST /admin/reload` loads an `RLC2`/`RSH1` blob and swaps
//!   it in; in-flight batches finish on the epoch they snapshotted, and
//!   every response carries the generation stamp it was answered under, so
//!   clients (and the e2e tests) can prove no stale answer crossed a swap.
//! * **Observability** ([`metrics`], [`obs`]): `GET /metrics` serves a
//!   `# TYPE`-annotated exposition — server counters, the cache's
//!   lock-free [`rlc_core::CacheStats`] snapshot, index-footprint and
//!   kernel-lane gauges, latency histograms with cumulative buckets, and
//!   the engine-side span families from the global [`rlc_obs`] registry.
//!   Sampled batches execute through the EXPLAIN path and their plan
//!   traces are served as JSON by `GET /admin/explain?last=N`.
//!
//! See the README's *Serving* and *Observability* sections for the wire
//! protocol and exposition grammar.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod http;
pub mod listener;
pub mod metrics;
pub mod obs;
pub mod pool;
pub mod swap;

pub use batcher::{BatchAnswer, BatcherClient, MicroBatcher};
pub use listener::Server;
pub use metrics::{Counter, ServerMetrics};
pub use obs::{Route, ServeObs};
pub use pool::{PoolClient, WorkerPool};
pub use swap::{Epoch, IndexSlot};

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks a mutex, recovering from poisoning instead of panicking — the
/// serve crate's locks guard bookkeeping (pending queues, the epoch slot's
/// `Arc`), never partially built values, so continuing after another
/// thread's panic is always sound and keeps the server answering.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tunables of a [`Server`]. `Default` is sized for tests and small hosts;
/// production deployments raise `threads`/`queue_depth` to the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// TCP port to bind on loopback; `0` picks an ephemeral port (read it
    /// back from [`Server::addr`]).
    pub port: u16,
    /// Worker threads draining the accept queue (clamped to at least 1).
    pub threads: usize,
    /// Bounded accept-queue depth; a full queue sheds with `503`.
    pub queue_depth: usize,
    /// How long the micro-batcher waits after the first in-flight query for
    /// more to pile on before executing the batch. Zero disables the wait.
    pub batch_window: Duration,
    /// End-to-end per-request budget; a single query that cannot be
    /// answered by this deadline gets a preformatted `504`.
    pub request_deadline: Duration,
    /// Absolute deadline for *reading* one request (slow-loris guard): a
    /// client may trickle bytes, but the whole request must arrive within
    /// this budget or the connection is answered `408` and closed.
    pub read_deadline: Duration,
    /// Cap on the request line + headers, enforced while reading.
    pub max_header_bytes: usize,
    /// Cap on the declared `Content-Length`, enforced via
    /// [`rlc_graph::checked_len`] before the body is believed.
    pub max_body_bytes: usize,
    /// How many EXPLAIN trace trees the journal retains for
    /// `GET /admin/explain` (oldest evicted past the cap; `0` retains
    /// none).
    pub explain_capacity: usize,
    /// EXPLAIN sampling stride: every `explain_sample`-th batch executes
    /// through the diagnosed path and its plan trace is journaled. `1`
    /// traces every batch, `0` (the default) never — the serving fast
    /// path is untouched unless tracing is asked for.
    pub explain_sample: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            threads: 4,
            queue_depth: 64,
            batch_window: Duration::from_millis(1),
            request_deadline: Duration::from_secs(2),
            read_deadline: Duration::from_secs(2),
            max_header_bytes: 8 << 10,
            max_body_bytes: 4 << 20,
            explain_capacity: 32,
            explain_sample: 0,
        }
    }
}
