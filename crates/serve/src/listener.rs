//! The server: accept loop, routing, and JSON envelopes.
//!
//! ## Wire protocol
//!
//! One request per connection, every response `Connection: close`:
//!
//! | Route                | Body                        | Success                                        |
//! |----------------------|-----------------------------|------------------------------------------------|
//! | `POST /query`        | a `Query` JSON object       | `{"ok":true,"answer":b,"generation":g}`        |
//! | `POST /batch`        | `{"queries":[Query,…]}`     | `{"ok":true,"answers":[…],"generation":g}`     |
//! | `POST /admin/reload` | raw `RLC2`/`RSH1` blob      | `{"ok":true,"generation":g}`                   |
//! | `GET /healthz`       | —                           | `{"ok":true,"generation":g}`                   |
//! | `GET /metrics`       | —                           | text: `name value` lines                       |
//!
//! Failures: malformed JSON or framing → `400`; a constraint the engine
//! rejects → `400` with the rendered [`QueryError`] (and the generation it
//! was rejected under); unknown path → `404`; known path, wrong method →
//! `405`; slow read → `408`; oversized body/head → `413`/`431`; queue full
//! → preformatted `503` + `Retry-After`; missed deadline → preformatted
//! `504`. In `/batch` answers, per-query rejections appear in-place as
//! `{"error":"…"}` so one bad query cannot fail its neighbors.

use crate::batcher::{BatcherClient, MicroBatcher};
use crate::http::{self, HttpError, HttpLimits, HttpRequest};
use crate::metrics::{Counter, ServerMetrics};
use crate::obs::{Route, ServeObs};
use crate::pool::WorkerPool;
use crate::swap::{Epoch, IndexSlot};
use crate::ServeConfig;
use rlc_core::{BatchPlan, PlanCache, Query};
use serde::{Deserialize, Serialize, Value};
use std::io;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Everything a worker needs to answer a request.
struct Ctx {
    config: ServeConfig,
    slot: Arc<IndexSlot>,
    cache: Arc<PlanCache>,
    metrics: Arc<ServerMetrics>,
    obs: Arc<ServeObs>,
    batcher: BatcherClient,
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the listener, drains the admitted queue, and joins every thread.
pub struct Server {
    addr: SocketAddr,
    stop_flag: Arc<AtomicBool>,
    listener_thread: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
    batcher: Option<MicroBatcher>,
    slot: Arc<IndexSlot>,
    cache: Arc<PlanCache>,
    metrics: Arc<ServerMetrics>,
    obs: Arc<ServeObs>,
}

impl Server {
    /// Boots a server for `epoch` with a fresh [`PlanCache`].
    pub fn start(config: ServeConfig, epoch: Epoch) -> io::Result<Server> {
        Server::start_with(
            config,
            Arc::new(IndexSlot::new(epoch)),
            Arc::new(PlanCache::new()),
        )
    }

    /// Boots a server over an existing slot and cache (shared observability
    /// or pre-warmed plans).
    pub fn start_with(
        config: ServeConfig,
        slot: Arc<IndexSlot>,
        cache: Arc<PlanCache>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, config.port))?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServerMetrics::new());
        let obs = Arc::new(ServeObs::new(
            config.explain_capacity,
            config.explain_sample,
        ));
        // A serving process wants the engine-side span histograms and
        // stitch counters live in `GET /metrics`. Observation never
        // changes answers (the engine differential runs with this on).
        rlc_obs::set_global_enabled(true);
        let (batcher, batcher_client) = MicroBatcher::start(
            config.batch_window,
            Arc::clone(&slot),
            Arc::clone(&cache),
            Arc::clone(&metrics),
            Arc::clone(&obs),
        )?;
        let ctx = Arc::new(Ctx {
            config,
            slot: Arc::clone(&slot),
            cache: Arc::clone(&cache),
            metrics: Arc::clone(&metrics),
            obs: Arc::clone(&obs),
            batcher: batcher_client,
        });
        let (pool, pool_client) = WorkerPool::start(
            config.threads,
            config.queue_depth,
            Arc::clone(&metrics),
            move |conn, enqueued| handle_connection(&ctx, conn, enqueued),
        )?;
        let stop_flag = Arc::new(AtomicBool::new(false));
        let listener_thread = {
            let stop_flag = Arc::clone(&stop_flag);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("rlc-serve-listener".to_owned())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop_flag.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(mut stream) = conn else { continue };
                        metrics.bump(Counter::Accepted);
                        if let Err(bounced) = pool_client.try_submit(stream) {
                            // Queue full: shed allocation-free and move on.
                            metrics.bump(Counter::Shed503);
                            stream = bounced;
                            http::drain_and_shed(&mut stream, http::SHED_OVERLOAD);
                        }
                    }
                    // `pool_client` drops here: the channel disconnects and
                    // the workers drain whatever was admitted, then exit.
                })?
        };
        Ok(Server {
            addr,
            stop_flag,
            listener_thread: Some(listener_thread),
            pool: Some(pool),
            batcher: Some(batcher),
            slot,
            cache,
            metrics,
            obs,
        })
    }

    /// The bound address (read the ephemeral port back from here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's counters (shared with the serving threads).
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The server's observability block (histograms + EXPLAIN journal).
    pub fn obs(&self) -> &Arc<ServeObs> {
        &self.obs
    }

    /// The epoch slot (for out-of-band swaps in tests and benches).
    pub fn slot(&self) -> &Arc<IndexSlot> {
        &self.slot
    }

    /// Graceful shutdown: stop accepting, answer everything already
    /// admitted, drain the batcher, join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(listener_thread) = self.listener_thread.take() else {
            return;
        };
        self.stop_flag.store(true, Ordering::SeqCst);
        // Poke the accept loop out of its blocking `accept`.
        let _ = TcpStream::connect(self.addr);
        let _ = listener_thread.join();
        if let Some(pool) = self.pool.take() {
            // The listener thread has exited, so the last queue sender is
            // gone: joining waits exactly for the admitted drain.
            pool.join();
        }
        if let Some(batcher) = self.batcher.take() {
            // Workers are joined: no submitter remains, the drain is finite.
            batcher.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A JSON tree that renders as-is (the vendored serde's `Value` does not
/// implement `Serialize` itself).
struct Envelope(Value);

impl Serialize for Envelope {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Renders a JSON envelope; serialization of a `Value` tree cannot fail.
fn render(value: Value) -> String {
    serde_json::to_string(&Envelope(value)).unwrap_or_default()
}

/// `{"ok":false,"error":…}` with the generation when the failure was
/// answered under a specific epoch.
fn error_body(message: &str, generation: Option<u64>) -> String {
    let mut fields = vec![
        ("ok".to_owned(), Value::Bool(false)),
        ("error".to_owned(), Value::Str(message.to_owned())),
    ];
    if let Some(generation) = generation {
        fields.push(("generation".to_owned(), Value::UInt(generation)));
    }
    render(Value::Map(fields))
}

/// Writes a JSON response, counting it under `counter` and recording the
/// serialize-and-write span.
fn respond_json(
    ctx: &Ctx,
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    counter: Counter,
    body: &str,
) {
    ctx.metrics.bump(counter);
    let write_started = Instant::now();
    let _ = http::write_response(stream, status, reason, "application/json", body.as_bytes());
    ctx.obs.record_write(write_started.elapsed());
}

/// Splits a request target into its path and query string (empty if none).
fn split_path(target: &str) -> (&str, &str) {
    match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    }
}

/// First value of `key` in an `a=1&b=2` query string.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// One connection, end to end: read within limits, route, answer, close.
/// `enqueued` is when the listener queued the connection — the gap to now
/// is the admission queue wait.
fn handle_connection(ctx: &Ctx, mut stream: TcpStream, enqueued: Instant) {
    let started = Instant::now();
    ctx.obs
        .record_queue_wait(started.saturating_duration_since(enqueued));
    let deadline = started + ctx.config.request_deadline;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(ctx.config.read_deadline));
    let limits = HttpLimits {
        max_header_bytes: ctx.config.max_header_bytes,
        max_body_bytes: ctx.config.max_body_bytes,
        read_deadline: ctx.config.read_deadline,
    };
    let request = match http::read_request(&mut stream, &limits) {
        Ok(request) => {
            ctx.obs.record_parse(started.elapsed());
            request
        }
        Err(HttpError::Timeout) => {
            ctx.metrics.bump(Counter::Timeout408);
            http::write_static_response(&mut stream, http::REQUEST_TIMEOUT);
            return;
        }
        Err(HttpError::HeadersTooLarge) => {
            ctx.metrics.bump(Counter::HeadersTooLarge431);
            http::write_static_response(&mut stream, http::HEADERS_TOO_LARGE);
            return;
        }
        Err(HttpError::BodyTooLarge) => {
            ctx.metrics.bump(Counter::BodyTooLarge413);
            http::write_static_response(&mut stream, http::BODY_TOO_LARGE);
            return;
        }
        Err(HttpError::BadRequest(message)) => {
            respond_json(
                ctx,
                &mut stream,
                400,
                "Bad Request",
                Counter::BadRequest400,
                &error_body(&message, None),
            );
            return;
        }
        Err(HttpError::Disconnected) => return,
    };
    let (path, query_string) = split_path(request.path.as_str());
    let route = match path {
        "/query" => Route::Query,
        "/batch" => Route::Batch,
        p if p.starts_with("/admin/") => Route::Admin,
        _ => Route::Other,
    };
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let body = render(Value::Map(vec![
                ("ok".to_owned(), Value::Bool(true)),
                (
                    "generation".to_owned(),
                    Value::UInt(ctx.slot.generation_value()),
                ),
            ]));
            respond_json(ctx, &mut stream, 200, "OK", Counter::Ok200, &body);
        }
        ("GET", "/metrics") => {
            let epoch = ctx.slot.snapshot();
            let text = ctx.obs.render_metrics(
                &ctx.metrics,
                ctx.cache.counters(),
                ctx.slot.generation_value(),
                &epoch,
            );
            ctx.metrics.bump(Counter::Ok200);
            let _ = http::write_response(&mut stream, 200, "OK", "text/plain", text.as_bytes());
        }
        ("GET", "/admin/explain") => handle_explain(ctx, &mut stream, query_string),
        ("POST", "/query") => handle_query(ctx, &mut stream, &request, deadline),
        ("POST", "/batch") => handle_batch(ctx, &mut stream, &request, deadline),
        ("POST", "/admin/reload") => handle_reload(ctx, &mut stream, &request),
        (_, "/healthz" | "/metrics" | "/query" | "/batch" | "/admin/reload" | "/admin/explain") => {
            respond_json(
                ctx,
                &mut stream,
                405,
                "Method Not Allowed",
                Counter::MethodNotAllowed405,
                &error_body("method not allowed for this path", None),
            );
        }
        (_, path) => {
            respond_json(
                ctx,
                &mut stream,
                404,
                "Not Found",
                Counter::NotFound404,
                &error_body(&format!("no such path {path:?}"), None),
            );
        }
    }
    ctx.obs.record_request(route, started.elapsed());
}

/// `GET /admin/explain?last=N`: the newest `N` journaled EXPLAIN traces
/// (`N` defaults to the journal capacity).
fn handle_explain(ctx: &Ctx, stream: &mut TcpStream, query_string: &str) {
    let last = match query_param(query_string, "last") {
        None => ctx.config.explain_capacity.max(1),
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                respond_json(
                    ctx,
                    stream,
                    400,
                    "Bad Request",
                    Counter::BadRequest400,
                    &error_body(
                        &format!("last must be an unsigned integer, got {raw:?}"),
                        None,
                    ),
                );
                return;
            }
        },
    };
    let body = ctx.obs.explain_body(last);
    respond_json(ctx, stream, 200, "OK", Counter::Ok200, &body);
}

/// Parses a JSON body as UTF-8 text.
fn body_text(request: &HttpRequest) -> Result<&str, String> {
    std::str::from_utf8(&request.body).map_err(|_| "request body is not valid UTF-8".to_owned())
}

/// `POST /query`: one query through the micro-batcher.
fn handle_query(ctx: &Ctx, stream: &mut TcpStream, request: &HttpRequest, deadline: Instant) {
    let query: Query = match body_text(request)
        .and_then(|text| serde_json::from_str(text).map_err(|e| format!("malformed query: {e}")))
    {
        Ok(query) => query,
        Err(message) => {
            respond_json(
                ctx,
                stream,
                400,
                "Bad Request",
                Counter::BadRequest400,
                &error_body(&message, None),
            );
            return;
        }
    };
    ctx.metrics.bump(Counter::Queries);
    match ctx.batcher.submit(query, deadline) {
        None => {
            ctx.metrics.bump(Counter::Deadline504);
            http::write_static_response(stream, http::DEADLINE_EXCEEDED);
        }
        Some(outcome) => match outcome.answer {
            Ok(answer) => {
                let body = render(Value::Map(vec![
                    ("ok".to_owned(), Value::Bool(true)),
                    ("answer".to_owned(), Value::Bool(answer)),
                    ("generation".to_owned(), Value::UInt(outcome.generation)),
                ]));
                respond_json(ctx, stream, 200, "OK", Counter::Ok200, &body);
            }
            Err(error) => {
                respond_json(
                    ctx,
                    stream,
                    400,
                    "Bad Request",
                    Counter::BadRequest400,
                    &error_body(&error.to_string(), Some(outcome.generation)),
                );
            }
        },
    }
}

/// `POST /batch`: an explicit batch, executed directly as one plan (it is
/// already a batch — the micro-batch window would only add latency).
fn handle_batch(ctx: &Ctx, stream: &mut TcpStream, request: &HttpRequest, deadline: Instant) {
    let queries: Vec<Query> = match body_text(request).and_then(parse_batch) {
        Ok(queries) => queries,
        Err(message) => {
            respond_json(
                ctx,
                stream,
                400,
                "Bad Request",
                Counter::BadRequest400,
                &error_body(&message, None),
            );
            return;
        }
    };
    ctx.metrics.bump(Counter::BatchRequests);
    if Instant::now() >= deadline {
        ctx.metrics.bump(Counter::Deadline504);
        http::write_static_response(stream, http::DEADLINE_EXCEEDED);
        return;
    }
    let epoch = ctx.slot.snapshot();
    let generation = epoch.generation().value();
    let execute_started = Instant::now();
    let answers = if ctx.obs.should_explain() {
        // The sampled EXPLAIN path: identical answers plus a plan trace
        // for the journal (the differential harness proves the identity).
        let (answers, mut trace) = epoch.with_engine(|engine| {
            BatchPlan::new(&queries).execute_explained(engine, Some(ctx.cache.as_ref()))
        });
        trace.attr("origin", "batch").attr("generation", generation);
        ctx.obs.push_trace(trace);
        answers
    } else {
        epoch.with_engine(|engine| {
            BatchPlan::new(&queries).execute_cached(engine, ctx.cache.as_ref())
        })
    };
    ctx.obs.record_execute(execute_started.elapsed());
    let rendered: Vec<Value> = answers
        .into_iter()
        .map(|answer| match answer {
            Ok(reachable) => Value::Bool(reachable),
            Err(error) => Value::Map(vec![("error".to_owned(), Value::Str(error.to_string()))]),
        })
        .collect();
    let body = render(Value::Map(vec![
        ("ok".to_owned(), Value::Bool(true)),
        ("answers".to_owned(), Value::Seq(rendered)),
        ("generation".to_owned(), Value::UInt(generation)),
    ]));
    respond_json(ctx, stream, 200, "OK", Counter::Ok200, &body);
}

/// Parses `{"queries":[Query,…]}`.
fn parse_batch(text: &str) -> Result<Vec<Query>, String> {
    let value: Value = serde_json::from_str::<Envelope>(text)
        .map(|e| e.0)
        .map_err(|e| format!("malformed batch: {e}"))?;
    let queries = value
        .get("queries")
        .ok_or_else(|| "batch request must be {\"queries\":[…]}".to_owned())?;
    Vec::<Query>::from_value(queries).map_err(|e| format!("malformed batch: {e}"))
}

impl Deserialize for Envelope {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(Envelope(value.clone()))
    }
}

/// `POST /admin/reload`: load the blob for the serving graph, swap it in.
/// In-flight batches finish on their snapshot of the old epoch; every new
/// snapshot serves the new one. Nothing is dropped either way.
fn handle_reload(ctx: &Ctx, stream: &mut TcpStream, request: &HttpRequest) {
    let graph = Arc::clone(ctx.slot.snapshot().graph());
    match Epoch::from_blob(&graph, &request.body) {
        Ok(next) => {
            let generation = next.generation().value();
            ctx.slot.swap(next);
            ctx.metrics.bump(Counter::Reloads);
            let body = render(Value::Map(vec![
                ("ok".to_owned(), Value::Bool(true)),
                ("generation".to_owned(), Value::UInt(generation)),
            ]));
            respond_json(ctx, stream, 200, "OK", Counter::Ok200, &body);
        }
        Err(message) => {
            ctx.metrics.bump(Counter::ReloadFailures);
            respond_json(
                ctx,
                stream,
                400,
                "Bad Request",
                Counter::BadRequest400,
                &error_body(&message, None),
            );
        }
    }
}
