//! The persistent worker pool and its bounded admission queue.
//!
//! Connections accepted by the listener are handed to a fixed set of
//! worker threads through a bounded [`std::sync::mpsc::sync_channel`].
//! Admission control is the bound itself: [`PoolClient::try_submit`] never
//! blocks — a full queue hands the connection straight back so the
//! listener can shed it with the preformatted `503`. The queue can
//! therefore never grow past [`crate::ServeConfig::queue_depth`], which is
//! what keeps overload a *latency* problem instead of a memory problem.
//!
//! Shutdown is by sender drop: when the listener exits, the channel
//! disconnects, each worker drains whatever was already admitted (every
//! queued connection still gets a full response), and
//! [`WorkerPool::join`] reaps the threads.

use crate::lock_recover;
use crate::metrics::ServerMetrics;
use std::io;
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The worker threads of one [`crate::Server`].
pub struct WorkerPool {
    workers: Vec<JoinHandle<()>>,
}

/// The submitting side of the pool's admission queue (held by the
/// listener). Dropping every client disconnects the channel and lets the
/// workers drain and exit.
pub struct PoolClient {
    sender: SyncSender<(TcpStream, Instant)>,
    metrics: Arc<ServerMetrics>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one) draining a queue of depth
    /// `queue_depth`; each admitted connection is handled by `handler`,
    /// which also receives the instant the connection was enqueued (so
    /// the handler can account the queue wait).
    /// Returns the pool (for joining) and the submitting client.
    pub fn start(
        threads: usize,
        queue_depth: usize,
        metrics: Arc<ServerMetrics>,
        handler: impl Fn(TcpStream, Instant) + Send + Sync + 'static,
    ) -> io::Result<(WorkerPool, PoolClient)> {
        let (sender, receiver) = mpsc::sync_channel::<(TcpStream, Instant)>(queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let handler: Arc<dyn Fn(TcpStream, Instant) + Send + Sync> = Arc::new(handler);
        let workers = (0..threads.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let handler = Arc::clone(&handler);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("rlc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &metrics, handler.as_ref()))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok((WorkerPool { workers }, PoolClient { sender, metrics }))
    }

    /// Waits for every worker to drain and exit. Call only after all
    /// [`PoolClient`]s are dropped, or this blocks forever.
    pub fn join(self) {
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// One worker: pull, account, handle, repeat until disconnect.
fn worker_loop(
    receiver: &Mutex<Receiver<(TcpStream, Instant)>>,
    metrics: &ServerMetrics,
    handler: &(dyn Fn(TcpStream, Instant) + Send + Sync),
) {
    loop {
        // The receiver lock is held only for the blocking `recv` — `std`'s
        // `Receiver` is single-consumer, so workers take turns pulling, and
        // handling runs unlocked.
        let next = lock_recover(receiver).recv();
        match next {
            Ok((conn, enqueued)) => {
                metrics.queue_leave();
                handler(conn, enqueued);
            }
            Err(_) => break,
        }
    }
}

impl PoolClient {
    /// Non-blocking admission: `Ok(())` if the connection was queued,
    /// `Err(conn)` handing it back when the queue is full (or the pool is
    /// gone) so the caller can shed it. The depth gauge is entered before
    /// the send and released by the worker (or here, on a bounce), so
    /// `queue_depth_max` upper-bounds true queue occupancy.
    pub fn try_submit(&self, conn: TcpStream) -> Result<(), TcpStream> {
        self.metrics.queue_enter();
        match self.sender.try_send((conn, Instant::now())) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full((conn, _))) | Err(TrySendError::Disconnected((conn, _))) => {
                self.metrics.queue_leave();
                Err(conn)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// A connected loopback socket pair's client end (the server end is
    /// dropped, which is fine for queueing tests).
    fn loopback_conn(listener: &TcpListener) -> TcpStream {
        let addr = listener.local_addr().unwrap();
        let conn = TcpStream::connect(addr).unwrap();
        let _ = listener.accept().unwrap();
        conn
    }

    #[test]
    fn admitted_connections_are_handled_and_excess_is_bounced() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let metrics = Arc::new(ServerMetrics::new());
        let handled = Arc::new(AtomicU64::new(0));
        let gate = Arc::new(Mutex::new(()));
        // Hold the gate so the single worker blocks on its first job and
        // the queue (depth 2) fills deterministically.
        let blocker = gate.lock().unwrap();
        let (pool, client) = {
            let handled = Arc::clone(&handled);
            let gate = Arc::clone(&gate);
            WorkerPool::start(1, 2, Arc::clone(&metrics), move |conn, _enqueued| {
                drop(lock_recover(&gate));
                handled.fetch_add(1, Ordering::SeqCst);
                drop(conn);
            })
            .unwrap()
        };
        // 1 in the worker's hands (eventually) + 2 queued fit…
        let mut bounced = 0;
        for _ in 0..5 {
            if client.try_submit(loopback_conn(&listener)).is_err() {
                bounced += 1;
            }
        }
        // …and of 5 offered, at least 2 must bounce (the worker may or may
        // not have pulled the first job yet, so 2 or 3 are admitted).
        assert!(bounced >= 2, "bounced {bounced} of 5");
        // Bound: queue (2) + workers (1) + one transient enter/leave from a
        // bounce in flight.
        assert!(metrics.queue_depth_max() <= 4, "gauge stays bounded");
        drop(blocker);
        drop(client);
        pool.join();
        assert_eq!(handled.load(Ordering::SeqCst) + bounced, 5);
        assert_eq!(metrics.queue_depth(), 0, "every admission was released");
    }

    #[test]
    fn workers_drain_the_queue_on_disconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let metrics = Arc::new(ServerMetrics::new());
        let handled = Arc::new(AtomicU64::new(0));
        let (pool, client) = {
            let handled = Arc::clone(&handled);
            WorkerPool::start(2, 8, Arc::clone(&metrics), move |conn, _enqueued| {
                std::thread::sleep(Duration::from_millis(1));
                handled.fetch_add(1, Ordering::SeqCst);
                drop(conn);
            })
            .unwrap()
        };
        for _ in 0..6 {
            client.try_submit(loopback_conn(&listener)).unwrap();
        }
        drop(client);
        pool.join();
        assert_eq!(handled.load(Ordering::SeqCst), 6, "join implies drained");
    }
}
