//! Hand-rolled HTTP/1.1: bounded request reading and response writing.
//!
//! The parser speaks exactly the subset the service needs — one request
//! per connection (`Connection: close` on every response), methods and
//! paths as opaque tokens, and `Content-Length`-delimited bodies — and
//! treats the peer as hostile the way the binary decoders treat blobs:
//!
//! * the head (request line + headers) may not exceed
//!   [`crate::ServeConfig::max_header_bytes`];
//! * the declared `Content-Length` is bounded through the same
//!   division-form [`checked_len`] used by the `RLC2`/`RSH1` decoders
//!   before a single body byte is believed;
//! * reading runs against an **absolute deadline** — a slow-loris client
//!   trickling one byte per poll still hits the cutoff, because each
//!   `read` gets only the remaining budget, not a fresh timeout.
//!
//! The shed responses ([`SHED_OVERLOAD`], [`DEADLINE_EXCEEDED`], …) are
//! preformatted `&'static` byte strings written by [`write_static_response`]
//! with no per-request allocation: an overloaded server must be able to say
//! "go away" without asking the allocator for anything (the
//! `crates/serve/tests/shed_alloc.rs` test proves this with a counting
//! global allocator, not a heuristic).

use rlc_graph::checked_len;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Bounds under which [`read_request`] trusts the wire.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Cap on the request line + headers.
    pub max_header_bytes: usize,
    /// Cap on the declared `Content-Length`.
    pub max_body_bytes: usize,
    /// Absolute budget for reading the whole request.
    pub read_deadline: Duration,
}

/// One parsed request. The method and path are kept as raw tokens; routing
/// matches them exactly.
#[derive(Debug)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request path (`/query`, …), as sent.
    pub path: String,
    /// The `Content-Length`-delimited body (empty when the header is
    /// absent).
    pub body: Vec<u8>,
}

/// Why a request could not be read. Each variant maps to exactly one
/// response (or, for [`HttpError::Disconnected`], to none).
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or body framing → `400`.
    BadRequest(String),
    /// Head exceeded [`HttpLimits::max_header_bytes`] → `431`.
    HeadersTooLarge,
    /// Declared `Content-Length` exceeded [`HttpLimits::max_body_bytes`]
    /// → `413`.
    BodyTooLarge,
    /// The read deadline expired before the request arrived → `408`.
    Timeout,
    /// The peer vanished (clean close or reset); nothing to answer.
    Disconnected,
}

/// Reads one request from `stream` under `limits`.
pub fn read_request(stream: &mut TcpStream, limits: &HttpLimits) -> Result<HttpRequest, HttpError> {
    let deadline = Instant::now() + limits.read_deadline;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_header_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        read_some(stream, &mut buf, deadline)?;
    };

    let (method, path, content_length) = parse_head(&buf[..head_end], limits)?;

    let mut body = buf.split_off(head_end + 4);
    while body.len() < content_length {
        read_some(stream, &mut body, deadline)?;
    }
    if body.len() > content_length {
        // One request per connection: trailing bytes are either framing
        // corruption or an attempt to pipeline, both rejected.
        return Err(HttpError::BadRequest(
            "request body exceeds its declared content-length".to_owned(),
        ));
    }
    Ok(HttpRequest { method, path, body })
}

/// Position of the `\r\n\r\n` head terminator, if fully buffered.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One bounded read: the socket timeout is set to the *remaining* budget,
/// so repeated slow reads cannot extend the absolute deadline.
fn read_some(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    deadline: Instant,
) -> Result<(), HttpError> {
    let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
        return Err(HttpError::Timeout);
    };
    // `set_read_timeout(Some(0))` is an error by contract; clamp up.
    let timeout = remaining.max(Duration::from_millis(1));
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return Err(HttpError::Disconnected);
    }
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) => Err(HttpError::Disconnected),
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            Ok(())
        }
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Err(HttpError::Timeout)
        }
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
        Err(_) => Err(HttpError::Disconnected),
    }
}

/// Parses the request line and headers; returns the bounded body length.
fn parse_head(head: &[u8], limits: &HttpLimits) -> Result<(String, String, usize), HttpError> {
    let head = std::str::from_utf8(head)
        .map_err(|_| HttpError::BadRequest("request head is not valid UTF-8".to_owned()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header line {line:?}"
            )));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().map_err(|_| {
                HttpError::BadRequest(format!("unparseable content-length {:?}", value.trim()))
            })?;
        }
    }
    // The same overflow-immune bound the binary decoders use: believe the
    // declared length only if `content_length * 1 ≤ max_body_bytes`.
    checked_len(content_length, 1, limits.max_body_bytes).map_err(|_| HttpError::BodyTooLarge)?;
    Ok((method.to_owned(), path.to_owned(), content_length))
}

/// Writes a response with the given status, reason, content type, and body.
/// Every response closes the connection (`Connection: close`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// How long a shed write may block on a slow peer before the connection is
/// abandoned — an unread 503 must not pin a listener or worker.
const STATIC_WRITE_TIMEOUT: Duration = Duration::from_millis(500);

/// Preformatted `503 Service Unavailable` + `Retry-After` for queue-full
/// shedding. `&'static`, complete with framing: writing it allocates
/// nothing.
pub static SHED_OVERLOAD: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Type: application/json\r\nContent-Length: 40\r\nConnection: close\r\n\r\n{\"ok\":false,\"error\":\"server overloaded\"}";

/// Preformatted `504 Gateway Timeout` for requests that missed their
/// deadline.
pub static DEADLINE_EXCEEDED: &[u8] = b"HTTP/1.1 504 Gateway Timeout\r\nContent-Type: application/json\r\nContent-Length: 40\r\nConnection: close\r\n\r\n{\"ok\":false,\"error\":\"deadline exceeded\"}";

/// Preformatted `408 Request Timeout` for slow-loris reads.
pub static REQUEST_TIMEOUT: &[u8] = b"HTTP/1.1 408 Request Timeout\r\nContent-Type: application/json\r\nContent-Length: 38\r\nConnection: close\r\n\r\n{\"ok\":false,\"error\":\"request timeout\"}";

/// Preformatted `431` for heads over [`HttpLimits::max_header_bytes`].
pub static HEADERS_TOO_LARGE: &[u8] = b"HTTP/1.1 431 Request Header Fields Too Large\r\nContent-Type: application/json\r\nContent-Length: 40\r\nConnection: close\r\n\r\n{\"ok\":false,\"error\":\"headers too large\"}";

/// Preformatted `413` for bodies over [`HttpLimits::max_body_bytes`].
pub static BODY_TOO_LARGE: &[u8] = b"HTTP/1.1 413 Payload Too Large\r\nContent-Type: application/json\r\nContent-Length: 37\r\nConnection: close\r\n\r\n{\"ok\":false,\"error\":\"body too large\"}";

/// Writes a preformatted response without allocating: a socket-option
/// syscall plus `write_all` of a `&'static` buffer. Failures are swallowed
/// — the peer of a shed response gets best-effort service by definition.
pub fn write_static_response(stream: &mut TcpStream, response: &'static [u8]) {
    let _ = stream.set_write_timeout(Some(STATIC_WRITE_TIMEOUT));
    let _ = stream.write_all(response);
}

/// How long a shed may wait to empty the peer's already-sent bytes.
const SHED_DRAIN_TIMEOUT: Duration = Duration::from_millis(5);

/// Sheds a connection whose request was never read: writes the
/// preformatted response, then empties what the peer already sent (one
/// bounded stack-buffer read). Closing a socket with unread received data
/// sends RST instead of FIN, and an RST can discard the shed response
/// still in flight — the drain makes the common small-request case close
/// cleanly. Allocation-free like [`write_static_response`].
pub fn drain_and_shed(stream: &mut TcpStream, response: &'static [u8]) {
    write_static_response(stream, response);
    let mut scratch = [0u8; 1024];
    let _ = stream.set_read_timeout(Some(SHED_DRAIN_TIMEOUT));
    let _ = stream.read(&mut scratch);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Splits a preformatted response into (status line, headers, body).
    fn parse_static(response: &'static [u8]) -> (String, Vec<(String, String)>, Vec<u8>) {
        let pos = find_head_end(response).expect("static response has a head terminator");
        let head = std::str::from_utf8(&response[..pos]).expect("head is UTF-8");
        let mut lines = head.split("\r\n");
        let status = lines.next().expect("status line").to_owned();
        let headers = lines
            .map(|l| {
                let (name, value) = l.split_once(':').expect("header line");
                (name.trim().to_owned(), value.trim().to_owned())
            })
            .collect();
        (status, headers, response[pos + 4..].to_vec())
    }

    fn header<'a>(headers: &'a [(String, String)], name: &str) -> &'a str {
        headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
            .expect("header present")
    }

    #[test]
    fn static_responses_are_internally_consistent() {
        // The preformatted responses hand-count their Content-Length; this
        // pins the counts (and the framing) so an edit cannot desync them.
        for (response, status_prefix) in [
            (SHED_OVERLOAD, "HTTP/1.1 503 "),
            (DEADLINE_EXCEEDED, "HTTP/1.1 504 "),
            (REQUEST_TIMEOUT, "HTTP/1.1 408 "),
            (HEADERS_TOO_LARGE, "HTTP/1.1 431 "),
            (BODY_TOO_LARGE, "HTTP/1.1 413 "),
        ] {
            let (status, headers, body) = parse_static(response);
            assert!(status.starts_with(status_prefix), "{status}");
            let declared: usize = header(&headers, "content-length").parse().unwrap();
            assert_eq!(declared, body.len(), "{status}: content-length matches");
            assert_eq!(header(&headers, "connection"), "close", "{status}");
            let body = String::from_utf8(body).unwrap();
            assert!(body.starts_with("{\"ok\":false,"), "{status}: {body}");
            assert!(body.ends_with('}'), "{status}: JSON body");
        }
        let (_, headers, _) = parse_static(SHED_OVERLOAD);
        assert_eq!(header(&headers, "retry-after"), "1", "503 asks to back off");
    }

    #[test]
    fn head_terminator_is_found_only_when_complete() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }

    #[test]
    fn parse_head_accepts_a_minimal_post() {
        let limits = HttpLimits {
            max_header_bytes: 1024,
            max_body_bytes: 1024,
            read_deadline: Duration::from_secs(1),
        };
        let head = b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 12";
        let (method, path, len) = parse_head(head, &limits).unwrap();
        assert_eq!(
            (method.as_str(), path.as_str(), len),
            ("POST", "/query", 12)
        );
    }

    #[test]
    fn parse_head_rejects_hostile_shapes() {
        let limits = HttpLimits {
            max_header_bytes: 1024,
            max_body_bytes: 100,
            read_deadline: Duration::from_secs(1),
        };
        // Oversized declared body: bounded before any byte is read.
        assert!(matches!(
            parse_head(b"POST / HTTP/1.1\r\nContent-Length: 101", &limits),
            Err(HttpError::BodyTooLarge)
        ));
        // Absurd declared body: the division-form bound cannot overflow.
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}", u64::MAX);
        assert!(matches!(
            parse_head(huge.as_bytes(), &limits),
            Err(HttpError::BadRequest(_)) | Err(HttpError::BodyTooLarge)
        ));
        for bad in [
            &b"GARBAGE"[..],
            b"GET  HTTP/1.1",
            b"GET / HTTP/9.9",
            b"GET / HTTP/1.1 extra",
            b"POST / HTTP/1.1\r\nContent-Length: nope",
            b"POST / HTTP/1.1\r\nno-colon-here",
            b"GET noslash HTTP/1.1",
        ] {
            assert!(
                matches!(parse_head(bad, &limits), Err(HttpError::BadRequest(_))),
                "{:?} must be rejected",
                String::from_utf8_lossy(bad)
            );
        }
    }
}
