//! Server-side observability: request/phase histograms, the EXPLAIN
//! journal, and the assembled `GET /metrics` exposition.
//!
//! [`ServeObs`] owns the serve layer's latency histograms directly (not
//! through the global registry) so concurrent servers — and concurrent
//! tests — never smear each other's distributions. The global
//! [`rlc_obs::Registry`] is still rendered into the exposition: the
//! engine-side span families (`rlc_plan_*`, `rlc_build_*`) and stitch
//! counters (`rlc_stitch_*`) land there, and their names are disjoint
//! from the `rlc_serve_*`/`plan_cache_*` families by convention.
//!
//! The EXPLAIN journal is fed by sampled batches: every
//! [`crate::ServeConfig::explain_sample`]-th micro-batch (and explicit
//! `POST /batch`) executes through
//! [`rlc_core::BatchPlan::execute_explained`] — same answers, plus a
//! [`TraceNode`] tree of per-query plan decisions — and the tree is
//! retained in a bounded ring served by `GET /admin/explain?last=N`.

use crate::metrics::ServerMetrics;
use crate::swap::Epoch;
use rlc_core::CacheStats;
use rlc_obs::{expo, Histogram, TraceJournal, TraceNode};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Route families of the per-request latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /query`.
    Query,
    /// `POST /batch`.
    Batch,
    /// `POST /admin/reload` and `GET /admin/explain`.
    Admin,
    /// Everything else (`/healthz`, `/metrics`, 404s, …).
    Other,
}

impl Route {
    fn label(self) -> &'static str {
        match self {
            Route::Query => "query",
            Route::Batch => "batch",
            Route::Admin => "admin",
            Route::Other => "other",
        }
    }
}

/// One server's observability block: histograms, the trace journal, and
/// the sampling sequence. Shared by the workers and the batcher thread.
#[derive(Debug)]
pub struct ServeObs {
    journal: TraceJournal,
    explain_sample: u64,
    explain_seq: AtomicU64,
    /// End-to-end request latency, one series per [`Route`].
    requests: [Histogram; 4],
    /// Listener-to-worker handoff wait.
    queue_wait: Histogram,
    /// Reading + parsing one request within its limits.
    parse: Histogram,
    /// First arrival to batch seal in the micro-batcher.
    batch_window: Histogram,
    /// `BatchPlan` execution (micro-batches and explicit batches).
    execute: Histogram,
    /// Serializing + writing one JSON response.
    write: Histogram,
}

impl ServeObs {
    /// A fresh block retaining `explain_capacity` traces and sampling one
    /// batch in `explain_sample` for EXPLAIN (`0` disables sampling).
    pub fn new(explain_capacity: usize, explain_sample: u64) -> Self {
        ServeObs {
            journal: TraceJournal::new(explain_capacity),
            explain_sample,
            explain_seq: AtomicU64::new(0),
            requests: [
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ],
            queue_wait: Histogram::new(),
            parse: Histogram::new(),
            batch_window: Histogram::new(),
            execute: Histogram::new(),
            write: Histogram::new(),
        }
    }

    /// The EXPLAIN journal.
    pub fn journal(&self) -> &TraceJournal {
        &self.journal
    }

    /// Whether the batch claiming this tick should execute through the
    /// EXPLAIN path. Every `explain_sample`-th batch does (the first
    /// always qualifies, so `explain_sample == 1` means *every* batch);
    /// `explain_sample == 0` means never.
    pub fn should_explain(&self) -> bool {
        if self.explain_sample == 0 {
            return false;
        }
        // rlc-analyze: allow(atomic-pairing) — sampling ticket; no memory is published through it
        let tick = self.explain_seq.fetch_add(1, Ordering::Relaxed);
        tick.is_multiple_of(self.explain_sample)
    }

    /// Retains `trace` in the journal (oldest evicted past capacity).
    pub fn push_trace(&self, trace: TraceNode) {
        self.journal.push(trace);
    }

    /// Records one request's end-to-end latency under its route.
    pub fn record_request(&self, route: Route, elapsed: Duration) {
        let idx = match route {
            Route::Query => 0,
            Route::Batch => 1,
            Route::Admin => 2,
            Route::Other => 3,
        };
        self.requests[idx].record_duration(elapsed);
    }

    /// Records the listener-to-worker queue wait.
    pub fn record_queue_wait(&self, elapsed: Duration) {
        self.queue_wait.record_duration(elapsed);
    }

    /// Records reading + parsing one request.
    pub fn record_parse(&self, elapsed: Duration) {
        self.parse.record_duration(elapsed);
    }

    /// Records the micro-batch coalescing window (first arrival → seal).
    pub fn record_batch_window(&self, elapsed: Duration) {
        self.batch_window.record_duration(elapsed);
    }

    /// Records one `BatchPlan` execution.
    pub fn record_execute(&self, elapsed: Duration) {
        self.execute.record_duration(elapsed);
    }

    /// Records serializing + writing one response.
    pub fn record_write(&self, elapsed: Duration) {
        self.write.record_duration(elapsed);
    }

    /// The full `GET /metrics` document: server counters and plan-cache
    /// series ([`ServerMetrics::write_exposition`]), index-footprint and
    /// kernel-lane gauges for `epoch`, the serve latency histograms, and
    /// every series of the global registry (engine-side spans and stitch
    /// counters).
    pub fn render_metrics(
        &self,
        metrics: &ServerMetrics,
        cache: CacheStats,
        generation: u64,
        epoch: &Epoch,
    ) -> String {
        let mut out = String::with_capacity(8 << 10);
        metrics.write_exposition(&mut out, cache, generation);

        expo::write_type(&mut out, "rlc_serve_index_bytes", "gauge");
        expo::write_sample(
            &mut out,
            "rlc_serve_index_bytes",
            &[("kind", epoch.kind_name())],
            epoch.index_bytes(),
        );
        if let Some(csr_bytes) = epoch.csr_index_bytes() {
            expo::write_type(&mut out, "rlc_serve_index_csr_bytes", "gauge");
            expo::write_sample(&mut out, "rlc_serve_index_csr_bytes", &[], csr_bytes);
        }
        expo::write_type(&mut out, "rlc_serve_kernel_info", "gauge");
        expo::write_sample(
            &mut out,
            "rlc_serve_kernel_info",
            &[("lane", rlc_core::kernel_name())],
            1,
        );

        expo::write_type(&mut out, "rlc_serve_request_seconds", "histogram");
        for route in [Route::Query, Route::Batch, Route::Admin, Route::Other] {
            let idx = match route {
                Route::Query => 0,
                Route::Batch => 1,
                Route::Admin => 2,
                Route::Other => 3,
            };
            expo::write_histogram(
                &mut out,
                "rlc_serve_request_seconds",
                &[("route", route.label())],
                &self.requests[idx].snapshot(),
            );
        }
        let phases = [
            ("rlc_serve_queue_wait_seconds", &self.queue_wait),
            ("rlc_serve_parse_seconds", &self.parse),
            ("rlc_serve_batch_window_seconds", &self.batch_window),
            ("rlc_serve_execute_seconds", &self.execute),
            ("rlc_serve_write_seconds", &self.write),
        ];
        for (name, hist) in phases {
            expo::write_type(&mut out, name, "histogram");
            expo::write_histogram(&mut out, name, &[], &hist.snapshot());
        }

        // The engine-side families: span histograms (rlc_plan_*,
        // rlc_build_*) and stitch counters (rlc_stitch_*). Their names
        // are disjoint from everything written above, so the document
        // stays duplicate-free (the e2e smoke test parses it to prove
        // that).
        let global = rlc_obs::global();
        for (name, value) in global.counter_snapshots() {
            expo::write_type(&mut out, &name, "counter");
            expo::write_sample(&mut out, &name, &[], value);
        }
        for (name, value) in global.gauge_snapshots() {
            expo::write_type(&mut out, &name, "gauge");
            expo::write_sample(&mut out, &name, &[], value);
        }
        for (name, snap) in global.histogram_snapshots() {
            expo::write_type(&mut out, &name, "histogram");
            expo::write_histogram(&mut out, &name, &[], &snap);
        }
        out
    }

    /// The `GET /admin/explain` body: `{"ok":true,"count":…,"traces":[…]}`
    /// with the newest `last` retained trace trees first.
    pub fn explain_body(&self, last: usize) -> String {
        let traces = self.journal.last(last);
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"ok\":true,\"count\":{},\"traces\":[", traces.len());
        for (i, trace) in traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&trace.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_fires_on_the_configured_stride() {
        let obs = ServeObs::new(8, 3);
        let fired: Vec<bool> = (0..9).map(|_| obs.should_explain()).collect();
        assert_eq!(
            fired,
            vec![true, false, false, true, false, false, true, false, false]
        );
        let off = ServeObs::new(8, 0);
        assert!((0..5).all(|_| !off.should_explain()));
    }

    #[test]
    fn explain_body_is_valid_newest_first_json() {
        let obs = ServeObs::new(4, 1);
        for i in 0..6 {
            let mut node = TraceNode::new("batch");
            node.attr("seq", i);
            obs.push_trace(node);
        }
        let body = obs.explain_body(2);
        assert!(body.starts_with("{\"ok\":true,\"count\":2,\"traces\":["));
        let first = body.find("\"seq\":\"5\"").expect("newest trace first");
        let second = body.find("\"seq\":\"4\"").expect("then its predecessor");
        assert!(first < second);
        assert!(
            !body.contains("\"seq\":\"1\""),
            "capacity 4 evicted seq 0/1"
        );
    }

    #[test]
    fn empty_journal_renders_an_empty_trace_list() {
        let obs = ServeObs::new(4, 0);
        assert_eq!(
            obs.explain_body(10),
            "{\"ok\":true,\"count\":0,\"traces\":[]}"
        );
    }
}
