//! Hot index swap: the epoch slot serving requests point at.
//!
//! An [`Epoch`] is one immutable serving configuration — the graph plus a
//! resident index (single `RLC2` or sharded `RSH1`) — identified by its
//! [`Generation`] stamp. The [`IndexSlot`] holds the current epoch behind
//! an `Arc`; readers take an O(1) snapshot and keep answering on it even
//! while `POST /admin/reload` swaps a new epoch in, so a reload never
//! drops or blocks an in-flight batch. The [`rlc_core::PlanCache`] needs
//! no flush on swap: cached plans carry the old generation in their
//! [`rlc_core::PlanIdentity`] and are dropped as stale on first touch.
//!
//! The slot is a `Mutex<Arc<Epoch>>` with lock-held sections of a clone or
//! a pointer store — `ArcSwap` semantics without the lock-free pointer
//! juggling, because the workspace confines `unsafe` to the kernel module
//! and a correct lock-free `Arc` swap cannot be written without it. The
//! generation is mirrored into an `AtomicU64` so metrics and health
//! endpoints read it without touching the lock at all.

use crate::lock_recover;
use rlc_core::{Generation, IndexEngine, ReachabilityEngine, RlcIndex};
use rlc_graph::LabeledGraph;
use rlc_shard::{ShardedEngine, ShardedIndex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// `RLC2` single-index magic, little-endian (see `rlc_core::index`).
const RLC2_MAGIC: u32 = 0x524C_4332;
/// `RLC1` legacy single-index magic — `RlcIndex::from_bytes` migrates it.
const RLC1_MAGIC: u32 = 0x524C_4331;
/// `RSH1` sharded-manifest magic (see `rlc_shard::persist`).
const RSH1_MAGIC: u32 = 0x5253_4831;

/// One immutable serving configuration: a graph and a resident index.
pub enum Epoch {
    /// A single-process [`RlcIndex`] served through [`IndexEngine`].
    Rlc {
        /// The indexed graph.
        graph: Arc<LabeledGraph>,
        /// The resident index.
        index: RlcIndex,
    },
    /// A vertex-partitioned [`ShardedIndex`] served through
    /// [`ShardedEngine`].
    Sharded {
        /// The indexed graph.
        graph: Arc<LabeledGraph>,
        /// The resident sharded index.
        index: ShardedIndex,
    },
}

impl Epoch {
    /// Wraps a single index as an epoch.
    pub fn rlc(graph: Arc<LabeledGraph>, index: RlcIndex) -> Self {
        Epoch::Rlc { graph, index }
    }

    /// Wraps a sharded index as an epoch.
    pub fn sharded(graph: Arc<LabeledGraph>, index: ShardedIndex) -> Self {
        Epoch::Sharded { graph, index }
    }

    /// The graph this epoch serves.
    pub fn graph(&self) -> &Arc<LabeledGraph> {
        match self {
            Epoch::Rlc { graph, .. } | Epoch::Sharded { graph, .. } => graph,
        }
    }

    /// The epoch's generation stamp (for sharded indexes, the folded
    /// per-shard stamp — any shard rebuild changes it).
    pub fn generation(&self) -> Generation {
        match self {
            Epoch::Rlc { index, .. } => index.generation(),
            Epoch::Sharded { index, .. } => index.generation(),
        }
    }

    /// The index's repetition bound `k`.
    pub fn k(&self) -> usize {
        match self {
            Epoch::Rlc { index, .. } => index.k(),
            Epoch::Sharded { index, .. } => index.k(),
        }
    }

    /// Short name of the resident index kind (`"rlc"` or `"sharded"`),
    /// exposed as the `kind` label of the `/metrics` index gauges.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Epoch::Rlc { .. } => "rlc",
            Epoch::Sharded { .. } => "sharded",
        }
    }

    /// Resident bytes of the serving index (for sharded epochs, summed
    /// across shards).
    pub fn index_bytes(&self) -> usize {
        match self {
            Epoch::Rlc { index, .. } => index.memory_bytes(),
            Epoch::Sharded { index, .. } => index.memory_bytes(),
        }
    }

    /// Resident bytes of the CSR projection, where the index keeps one
    /// (the sharded index has no combined CSR to price).
    pub fn csr_index_bytes(&self) -> Option<usize> {
        match self {
            Epoch::Rlc { index, .. } => Some(index.csr_memory_bytes()),
            Epoch::Sharded { .. } => None,
        }
    }

    /// Runs `f` with an engine borrowing this epoch. Engine construction is
    /// a couple of pointer copies, so building one per batch is free; the
    /// borrow keeps the epoch alive for exactly the evaluation.
    pub fn with_engine<R>(&self, f: impl FnOnce(&dyn ReachabilityEngine) -> R) -> R {
        match self {
            Epoch::Rlc { graph, index } => f(&IndexEngine::new(graph, index)),
            Epoch::Sharded { graph, index } => f(&ShardedEngine::new(graph, index)),
        }
    }

    /// Loads an index blob for `graph`, dispatching on the magic: `RLC2`
    /// (or legacy `RLC1`) loads a single index, `RSH1` a sharded manifest.
    /// Both decoders fully validate the blob (the `RSH1` path additionally
    /// pins it to `graph` by topology digest; for `RLC2`, which predates
    /// the digest, the vertex count is cross-checked here). The loaded
    /// index mints a fresh in-process generation, so a reload is always
    /// observable as a stamp change.
    pub fn from_blob(graph: &Arc<LabeledGraph>, bytes: &[u8]) -> Result<Epoch, String> {
        let magic = match bytes.get(..4) {
            Some([a, b, c, d]) => u32::from_le_bytes([*a, *b, *c, *d]),
            _ => return Err("index blob shorter than its 4-byte magic".to_owned()),
        };
        match magic {
            RLC2_MAGIC | RLC1_MAGIC => {
                let index = RlcIndex::from_bytes(bytes)?;
                if index.vertex_count() != graph.vertex_count() {
                    return Err(format!(
                        "index blob covers {} vertices but the serving graph has {}",
                        index.vertex_count(),
                        graph.vertex_count()
                    ));
                }
                Ok(Epoch::rlc(Arc::clone(graph), index))
            }
            RSH1_MAGIC => ShardedIndex::from_bytes(bytes, graph)
                .map(|index| Epoch::sharded(Arc::clone(graph), index)),
            other => Err(format!(
                "unrecognized index blob magic {other:#010x} (expected RLC2 or RSH1)"
            )),
        }
    }
}

impl std::fmt::Debug for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            Epoch::Rlc { .. } => "Rlc",
            Epoch::Sharded { .. } => "Sharded",
        };
        f.debug_struct("Epoch")
            .field("kind", &kind)
            .field("k", &self.k())
            .field("generation", &self.generation())
            .finish()
    }
}

/// The swap slot: current epoch plus a lock-free generation mirror.
#[derive(Debug)]
pub struct IndexSlot {
    current: Mutex<Arc<Epoch>>,
    generation: AtomicU64,
}

impl IndexSlot {
    /// Creates a slot serving `epoch`.
    pub fn new(epoch: Epoch) -> Self {
        let generation = epoch.generation().value();
        IndexSlot {
            current: Mutex::new(Arc::new(epoch)),
            generation: AtomicU64::new(generation),
        }
    }

    /// The current epoch. The lock is held for one `Arc` clone; the caller
    /// then evaluates entirely on its snapshot, unaffected by later swaps.
    pub fn snapshot(&self) -> Arc<Epoch> {
        Arc::clone(&lock_recover(&self.current))
    }

    /// Swaps `epoch` in and returns the previous one. In-flight snapshots
    /// keep the old epoch alive until their batches finish; new snapshots
    /// see the new epoch. The generation mirror is updated under the same
    /// lock, so mirror and slot can never point at different epochs for a
    /// reader that takes the lock afterwards.
    pub fn swap(&self, epoch: Epoch) -> Arc<Epoch> {
        let next_generation = epoch.generation().value();
        let mut guard = lock_recover(&self.current);
        let previous = std::mem::replace(&mut *guard, Arc::new(epoch));
        self.generation.store(next_generation, Ordering::SeqCst);
        previous
    }

    /// The serving generation, read without the lock (metrics/health path).
    pub fn generation_value(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_core::{build_index, BuildConfig};
    use rlc_graph::examples::fig2_graph;
    use rlc_graph::Label;
    use rlc_shard::ShardBuildConfig;

    fn graph() -> Arc<LabeledGraph> {
        Arc::new(fig2_graph())
    }

    #[test]
    fn blob_magic_dispatch_loads_both_formats() {
        let graph = graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let rlc_blob = index.to_bytes();
        let epoch = Epoch::from_blob(&graph, &rlc_blob).unwrap();
        assert!(matches!(epoch, Epoch::Rlc { .. }));
        assert_eq!(epoch.k(), 2);

        let (sharded, _) = ShardedIndex::build(&graph, &ShardBuildConfig::new(2, 2)).unwrap();
        let sharded_blob = sharded.to_bytes();
        let epoch = Epoch::from_blob(&graph, &sharded_blob).unwrap();
        assert!(matches!(epoch, Epoch::Sharded { .. }));
        assert_eq!(epoch.k(), 2);
    }

    #[test]
    fn hostile_blobs_are_rejected_with_reasons() {
        let graph = graph();
        assert!(Epoch::from_blob(&graph, b"")
            .unwrap_err()
            .contains("shorter than"));
        assert!(Epoch::from_blob(&graph, b"XYZW rest")
            .unwrap_err()
            .contains("unrecognized"));
        // A valid blob for a *different* graph is refused.
        let mut builder = rlc_graph::GraphBuilder::with_capacity(2, 1);
        builder.add_edge(0, Label(0), 1);
        let small = Arc::new(builder.build());
        let (small_index, _) = build_index(&small, &BuildConfig::new(2));
        let err = Epoch::from_blob(&graph, &small_index.to_bytes()).unwrap_err();
        assert!(err.contains("vertices"), "{err}");
    }

    #[test]
    fn swap_is_observable_and_old_snapshots_survive() {
        let graph = graph();
        let (a, _) = build_index(&graph, &BuildConfig::new(2));
        let (b, _) = build_index(&graph, &BuildConfig::new(3));
        let slot = IndexSlot::new(Epoch::rlc(Arc::clone(&graph), a));
        let gen_a = slot.generation_value();
        let held = slot.snapshot();
        let previous = slot.swap(Epoch::rlc(Arc::clone(&graph), b));
        let gen_b = slot.generation_value();
        assert_ne!(gen_a, gen_b, "a reload is always a stamp change");
        assert_eq!(previous.generation().value(), gen_a);
        // The pre-swap snapshot still answers on the old epoch.
        assert_eq!(held.generation().value(), gen_a);
        assert_eq!(held.k(), 2);
        assert_eq!(slot.snapshot().k(), 3);
    }
}
