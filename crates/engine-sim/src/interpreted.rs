//! A tuple-at-a-time interpreted property-path evaluator (the "Sys1"
//! archetype of Table V).
//!
//! The engine stores a dictionary-encoded adjacency map keyed by
//! `(vertex, label name)` — the shape a general-purpose property-graph engine
//! exposes to its traversal interpreter — and evaluates the query automaton
//! one tuple at a time, resolving every transition through hash lookups and
//! string comparisons. This reproduces the dominant costs a query interpreter
//! pays when no reachability index is available.

use rlc_baselines::engine::with_prepared_nfa;
use rlc_baselines::nfa::Nfa;
use rlc_core::engine::{check_vertex_range, Prepared, ReachabilityEngine};
use rlc_core::{Constraint, QueryError};
use rlc_graph::{LabeledGraph, VertexId};
use std::collections::{HashMap, HashSet, VecDeque};

/// See the module documentation.
pub struct InterpretedEngine {
    /// Dictionary of label names, indexed by label id.
    label_names: Vec<String>,
    /// Adjacency keyed by `(source, label name)`.
    adjacency: HashMap<(VertexId, String), Vec<VertexId>>,
    /// Number of vertices of the loaded graph, for query id validation.
    vertices: usize,
}

impl InterpretedEngine {
    /// Loads a graph into the engine's storage model.
    pub fn load(graph: &LabeledGraph) -> Self {
        let label_names: Vec<String> = (0..graph.label_count())
            .map(|i| {
                graph
                    .labels()
                    .name(rlc_graph::Label::from_index(i))
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("l{i}"))
            })
            .collect();
        let mut adjacency: HashMap<(VertexId, String), Vec<VertexId>> = HashMap::new();
        for e in graph.edges() {
            adjacency
                .entry((e.source, label_names[e.label.index()].clone()))
                .or_default()
                .push(e.target);
        }
        InterpretedEngine {
            label_names,
            adjacency,
            vertices: graph.vertex_count(),
        }
    }

    fn label_name(&self, label: rlc_graph::Label) -> &str {
        &self.label_names[label.index()]
    }

    /// Tuple-at-a-time interpretation of the product automaton: every
    /// expansion re-resolves the transition's label name and performs a
    /// fresh adjacency lookup, as an interpreter over a generic storage
    /// layer does.
    fn evaluate_nfa(&self, nfa: &Nfa, source: VertexId, target: VertexId) -> bool {
        let mut visited: HashSet<(VertexId, usize)> = HashSet::new();
        let mut queue: VecDeque<(VertexId, usize)> = VecDeque::new();
        visited.insert((source, nfa.start));
        queue.push_back((source, nfa.start));
        if source == target && nfa.accepting[nfa.start] {
            return true;
        }
        while let Some((v, q)) = queue.pop_front() {
            // Interpret each outgoing automaton transition separately.
            for &(label, q_next) in &nfa.transitions[q] {
                let key = (v, self.label_name(label).to_owned());
                let Some(neighbours) = self.adjacency.get(&key) else {
                    continue;
                };
                for &w in neighbours {
                    if !visited.insert((w, q_next)) {
                        continue;
                    }
                    if w == target && nfa.accepting[q_next] {
                        return true;
                    }
                    queue.push_back((w, q_next));
                }
            }
        }
        false
    }
}

impl ReachabilityEngine for InterpretedEngine {
    fn name(&self) -> &str {
        "Sys1 (interpreted)"
    }

    fn prepare(&self, constraint: &Constraint) -> Result<Prepared, QueryError> {
        // The interpreter compiles the query automaton once per prepared
        // constraint; the per-tuple interpretation overhead it models stays
        // in the execute phase.
        let nfa = Nfa::concatenation(constraint.blocks());
        let bytes = nfa.memory_bytes();
        Ok(Prepared::new(constraint.clone(), self.name(), nfa).with_approx_bytes(bytes))
    }

    fn evaluate_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> Result<bool, QueryError> {
        check_vertex_range(source, target, self.vertices)?;
        Ok(with_prepared_nfa(prepared, |nfa| {
            self.evaluate_nfa(nfa, source, target)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_core::Query;
    use rlc_graph::examples::fig1_graph;

    #[test]
    fn evaluates_fraud_query() {
        let g = fig1_graph();
        let engine = InterpretedEngine::load(&g);
        let debits = g.labels().resolve("debits").unwrap();
        let credits = g.labels().resolve("credits").unwrap();
        let q = Query::rlc(
            g.vertex_id("A14").unwrap(),
            g.vertex_id("A19").unwrap(),
            vec![debits, credits],
        )
        .unwrap();
        assert_eq!(engine.evaluate(&q), Ok(true));
        let q_false = Query::rlc(
            g.vertex_id("A19").unwrap(),
            g.vertex_id("A14").unwrap(),
            vec![debits, credits],
        )
        .unwrap();
        assert_eq!(engine.evaluate(&q_false), Ok(false));
    }

    #[test]
    fn concatenated_blocks_are_supported() {
        let g = fig1_graph();
        let engine = InterpretedEngine::load(&g);
        let knows = g.labels().resolve("knows").unwrap();
        let holds = g.labels().resolve("holds").unwrap();
        let q = Query::concat(
            g.vertex_id("P10").unwrap(),
            g.vertex_id("A19").unwrap(),
            vec![vec![knows], vec![holds]],
        )
        .unwrap();
        assert_eq!(engine.evaluate(&q), Ok(true));
        // The prepared path reuses one automaton across pairs.
        let prepared = engine.prepare(q.constraint()).unwrap();
        assert_eq!(
            engine.evaluate_prepared(q.source, q.target, &prepared),
            Ok(true)
        );
    }
}
