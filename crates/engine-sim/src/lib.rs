//! # rlc-engine-sim
//!
//! Simulated mainstream graph engines, standing in for the three systems of
//! the paper's Table V (two anonymized commercial engines and Virtuoso).
//! None of those systems has an RLC-specific reachability index; they
//! evaluate recursive property paths with generic machinery. The three
//! archetypes implemented here cover the evaluation strategies those systems
//! use:
//!
//! * [`InterpretedEngine`] — tuple-at-a-time interpretation of the query
//!   automaton over a dictionary-encoded adjacency store (Sys1-like);
//! * [`MaterializingEngine`] — breadth-wise evaluation that materializes the
//!   full binding table of every expansion step before deduplicating
//!   (Sys2-like);
//! * [`TripleStoreEngine`] — a sorted SPO/POS triple store evaluating the
//!   path by per-block transitive closure with index nested-loop joins
//!   (Virtuoso-like).
//!
//! All three implement [`ReachabilityEngine`] — the evaluator abstraction of
//! `rlc_core::engine` that this crate's private `GraphEngine` trait grew
//! into — and return exactly the same answers as the RLC index (they are
//! correct evaluators); they are only slower, which is what Table V measures.
//! See DESIGN.md ("Substitutions") for why this preserves the shape of the
//! paper's comparison.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod interpreted;
pub mod materializing;
pub mod triple_store;

use rlc_graph::LabeledGraph;

pub use interpreted::InterpretedEngine;
pub use materializing::MaterializingEngine;
pub use rlc_core::engine::ReachabilityEngine;
pub use triple_store::TripleStoreEngine;

/// Instantiates all three simulated engines loaded with `graph`.
///
/// The engines copy the graph into their own storage models, so the returned
/// boxes do not borrow `graph`.
pub fn all_engines(graph: &LabeledGraph) -> Vec<Box<dyn ReachabilityEngine>> {
    vec![
        Box::new(InterpretedEngine::load(graph)),
        Box::new(MaterializingEngine::load(graph)),
        Box::new(TripleStoreEngine::load(graph)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_baselines::BfsEngine;
    use rlc_core::Query;
    use rlc_graph::examples::fig1_graph;
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};

    #[test]
    fn all_engines_agree_with_online_oracle() {
        let g = erdos_renyi(&SyntheticConfig::new(80, 3.0, 3, 4));
        let engines = all_engines(&g);
        let l0 = rlc_graph::Label(0);
        let l1 = rlc_graph::Label(1);
        for s in (0..g.vertex_count() as u32).step_by(9) {
            for t in (0..g.vertex_count() as u32).step_by(11) {
                for blocks in [vec![vec![l0]], vec![vec![l0, l1]], vec![vec![l0], vec![l1]]] {
                    let q = Query::concat(s, t, blocks).unwrap();
                    let expected = BfsEngine::new(&g).evaluate(&q);
                    for engine in &engines {
                        assert_eq!(
                            engine.evaluate(&q),
                            expected,
                            "engine {} disagrees on ({s},{t})",
                            engine.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_engines_answer_plain_rlc_queries() {
        let g = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 17));
        let engines = all_engines(&g);
        let l0 = rlc_graph::Label(0);
        let l1 = rlc_graph::Label(1);
        for s in (0..g.vertex_count() as u32).step_by(7) {
            for t in (0..g.vertex_count() as u32).step_by(5) {
                for constraint in [vec![l0], vec![l1, l0]] {
                    let q = Query::rlc(s, t, constraint).unwrap();
                    let expected = BfsEngine::new(&g).evaluate(&q);
                    for engine in &engines {
                        assert_eq!(
                            engine.evaluate(&q),
                            expected,
                            "engine {} disagrees on ({s},{t})",
                            engine.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn engines_have_distinct_names() {
        let g = fig1_graph();
        let engines = all_engines(&g);
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"Sys1 (interpreted)"));
        assert!(names.contains(&"Sys2 (materializing)"));
        assert!(names.contains(&"Virtuoso-like (triple store)"));
    }

    #[test]
    fn sim_engines_share_plans_across_instances_by_kind() {
        // The simulated engines are index-free: their prepared artifacts
        // depend only on the constraint (an NFA, or nothing at all for the
        // triple store), so they report kind-level plan identities and a
        // cross-batch PlanCache can reuse one plan across instances — even
        // instances loaded with different graphs.
        use rlc_core::engine::PlanIdentity;
        use rlc_core::{Constraint, PlanCache, PrepareCounting};

        let g1 = erdos_renyi(&SyntheticConfig::new(40, 3.0, 3, 5));
        let g2 = erdos_renyi(&SyntheticConfig::new(30, 3.0, 3, 6));
        let constraint =
            Constraint::new(vec![vec![rlc_graph::Label(0)], vec![rlc_graph::Label(1)]]).unwrap();
        for (a, b) in all_engines(&g1).iter().zip(all_engines(&g2).iter()) {
            assert_eq!(a.plan_identity(), b.plan_identity(), "{}", a.name());
            assert!(
                matches!(a.plan_identity(), PlanIdentity::Kind(_)),
                "index-free engines key by kind"
            );
            let cache = PlanCache::new();
            let counting_a = PrepareCounting::new(a.as_ref());
            let counting_b = PrepareCounting::new(b.as_ref());
            let plan = cache.prepare(&counting_a, &constraint).unwrap();
            let shared = cache.prepare(&counting_b, &constraint).unwrap();
            assert_eq!(counting_a.prepare_count(), 1);
            assert_eq!(counting_b.prepare_count(), 0, "{}: cache hit", b.name());
            // The shared plan evaluates correctly on both instances.
            let q = rlc_core::Query::new(0, 1, constraint.clone());
            assert_eq!(a.evaluate_prepared(0, 1, &plan), a.evaluate(&q));
            assert_eq!(b.evaluate_prepared(0, 1, &shared), b.evaluate(&q));
        }
    }

    #[test]
    fn batch_evaluation_matches_single() {
        let g = erdos_renyi(&SyntheticConfig::new(40, 3.0, 3, 23));
        let engines = all_engines(&g);
        let queries: Vec<Query> = (0..40u32)
            .map(|s| Query::rlc(s, (s + 13) % 40, vec![rlc_graph::Label(0)]).unwrap())
            .collect();
        for engine in &engines {
            let batch = engine.evaluate_batch(&queries);
            for (query, answer) in queries.iter().zip(&batch) {
                assert_eq!(*answer, engine.evaluate(query), "{}", engine.name());
            }
        }
    }
}
