//! # rlc-engine-sim
//!
//! Simulated mainstream graph engines, standing in for the three systems of
//! the paper's Table V (two anonymized commercial engines and Virtuoso).
//! None of those systems has an RLC-specific reachability index; they
//! evaluate recursive property paths with generic machinery. The three
//! archetypes implemented here cover the evaluation strategies those systems
//! use:
//!
//! * [`InterpretedEngine`] — tuple-at-a-time interpretation of the query
//!   automaton over a dictionary-encoded adjacency store (Sys1-like);
//! * [`MaterializingEngine`] — breadth-wise evaluation that materializes the
//!   full binding table of every expansion step before deduplicating
//!   (Sys2-like);
//! * [`TripleStoreEngine`] — a sorted SPO/POS triple store evaluating the
//!   path by per-block transitive closure with index nested-loop joins
//!   (Virtuoso-like).
//!
//! All three return exactly the same answers as the RLC index (they are
//! correct evaluators); they are only slower, which is what Table V measures.
//! See DESIGN.md ("Substitutions") for why this preserves the shape of the
//! paper's comparison.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod interpreted;
pub mod materializing;
pub mod triple_store;

use rlc_core::ConcatQuery;
use rlc_graph::LabeledGraph;

pub use interpreted::InterpretedEngine;
pub use materializing::MaterializingEngine;
pub use triple_store::TripleStoreEngine;

/// A loaded graph engine able to evaluate recursive property-path
/// reachability queries (RLC queries and concatenations of Kleene-plus
/// blocks).
pub trait GraphEngine {
    /// Human-readable engine name, used in the Table V report.
    fn name(&self) -> &str;

    /// Evaluates a reachability query with a `B1+ ∘ … ∘ Bm+` constraint.
    fn evaluate(&self, query: &ConcatQuery) -> bool;
}

/// Instantiates all three simulated engines loaded with `graph`.
pub fn all_engines(graph: &LabeledGraph) -> Vec<Box<dyn GraphEngine>> {
    vec![
        Box::new(InterpretedEngine::load(graph)),
        Box::new(MaterializingEngine::load(graph)),
        Box::new(TripleStoreEngine::load(graph)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_baselines::bfs::bfs_concat_query;
    use rlc_graph::examples::fig1_graph;
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};

    #[test]
    fn all_engines_agree_with_online_oracle() {
        let g = erdos_renyi(&SyntheticConfig::new(80, 3.0, 3, 4));
        let engines = all_engines(&g);
        let l0 = rlc_graph::Label(0);
        let l1 = rlc_graph::Label(1);
        for s in (0..g.vertex_count() as u32).step_by(9) {
            for t in (0..g.vertex_count() as u32).step_by(11) {
                for blocks in [vec![vec![l0]], vec![vec![l0, l1]], vec![vec![l0], vec![l1]]] {
                    let q = ConcatQuery::new(s, t, blocks);
                    let expected = bfs_concat_query(&g, &q);
                    for engine in &engines {
                        assert_eq!(
                            engine.evaluate(&q),
                            expected,
                            "engine {} disagrees on ({s},{t})",
                            engine.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn engines_have_distinct_names() {
        let g = fig1_graph();
        let engines = all_engines(&g);
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"Sys1 (interpreted)"));
        assert!(names.contains(&"Sys2 (materializing)"));
        assert!(names.contains(&"Virtuoso-like (triple store)"));
    }
}
