//! A breadth-wise materializing property-path evaluator (the "Sys2"
//! archetype of Table V).
//!
//! Distributed and columnar engines evaluate recursive path expressions as a
//! loop of relational joins: the current frontier relation is joined with the
//! label-filtered edge relation, the full result is materialized, and only
//! then deduplicated against the visited relation. The materialization of
//! duplicate bindings before deduplication is what makes this strategy far
//! more expensive than the pointer-chasing online traversals — and both are
//! orders of magnitude slower than one RLC-index lookup.

use rlc_baselines::engine::with_prepared_nfa;
use rlc_baselines::nfa::Nfa;
use rlc_core::engine::{check_vertex_range, Prepared, ReachabilityEngine};
use rlc_core::{Constraint, QueryError};
use rlc_graph::{Label, LabeledGraph, VertexId};
use std::collections::HashMap;
use std::collections::HashSet;

/// See the module documentation.
pub struct MaterializingEngine {
    /// Edge relation partitioned by label: `label → Vec<(source, target)>`.
    edges_by_label: HashMap<Label, Vec<(VertexId, VertexId)>>,
    /// Number of vertices of the loaded graph, for query id validation.
    vertices: usize,
}

impl MaterializingEngine {
    /// Loads a graph into the engine's storage model.
    pub fn load(graph: &LabeledGraph) -> Self {
        let mut edges_by_label: HashMap<Label, Vec<(VertexId, VertexId)>> = HashMap::new();
        for e in graph.edges() {
            edges_by_label
                .entry(e.label)
                .or_default()
                .push((e.source, e.target));
        }
        MaterializingEngine {
            edges_by_label,
            vertices: graph.vertex_count(),
        }
    }

    /// Breadth-wise evaluation of the product automaton: join, materialize,
    /// deduplicate — see the module documentation.
    fn evaluate_nfa(&self, nfa: &Nfa, source: VertexId, target: VertexId) -> bool {
        // The binding relation holds (vertex, automaton state) pairs.
        let mut visited: HashSet<(VertexId, usize)> = HashSet::new();
        let mut frontier: Vec<(VertexId, usize)> = vec![(source, nfa.start)];
        visited.insert((source, nfa.start));
        if source == target && nfa.accepting[nfa.start] {
            return true;
        }
        while !frontier.is_empty() {
            // Join the frontier with the edge relation, materializing every
            // produced binding (duplicates included), as a breadth-wise
            // relational evaluator does.
            let mut materialized: Vec<(VertexId, usize)> = Vec::new();
            for &(v, q) in &frontier {
                for &(label, q_next) in &nfa.transitions[q] {
                    if let Some(edges) = self.edges_by_label.get(&label) {
                        // Hash-join frontier tuple against the label-filtered
                        // edge relation (scan; the relation is not indexed by
                        // source, matching a column-store edge table).
                        for &(s, t) in edges {
                            if s == v {
                                materialized.push((t, q_next));
                            }
                        }
                    }
                }
            }
            // Deduplicate only after materialization.
            let mut next_frontier: Vec<(VertexId, usize)> = Vec::new();
            for binding in materialized {
                if visited.insert(binding) {
                    if binding.0 == target && nfa.accepting[binding.1] {
                        return true;
                    }
                    next_frontier.push(binding);
                }
            }
            frontier = next_frontier;
        }
        false
    }
}

impl ReachabilityEngine for MaterializingEngine {
    fn name(&self) -> &str {
        "Sys2 (materializing)"
    }

    fn prepare(&self, constraint: &Constraint) -> Result<Prepared, QueryError> {
        let nfa = Nfa::concatenation(constraint.blocks());
        let bytes = nfa.memory_bytes();
        Ok(Prepared::new(constraint.clone(), self.name(), nfa).with_approx_bytes(bytes))
    }

    fn evaluate_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> Result<bool, QueryError> {
        check_vertex_range(source, target, self.vertices)?;
        Ok(with_prepared_nfa(prepared, |nfa| {
            self.evaluate_nfa(nfa, source, target)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_baselines::BfsEngine;
    use rlc_core::Query;
    use rlc_graph::examples::{fig1_graph, fig2_graph};

    #[test]
    fn agrees_with_oracle_on_fig2() {
        let g = fig2_graph();
        let engine = MaterializingEngine::load(&g);
        let oracle = BfsEngine::new(&g);
        let l1 = g.labels().resolve("l1").unwrap();
        let l2 = g.labels().resolve("l2").unwrap();
        for s in g.vertices() {
            for t in g.vertices() {
                for blocks in [vec![vec![l1]], vec![vec![l2, l1]], vec![vec![l2], vec![l1]]] {
                    let q = Query::concat(s, t, blocks).unwrap();
                    assert_eq!(engine.evaluate(&q), oracle.evaluate(&q));
                }
            }
        }
    }

    #[test]
    fn cycle_queries_terminate() {
        let g = fig1_graph();
        let engine = MaterializingEngine::load(&g);
        let knows = g.labels().resolve("knows").unwrap();
        let q = Query::rlc(
            g.vertex_id("P11").unwrap(),
            g.vertex_id("P11").unwrap(),
            vec![knows],
        )
        .unwrap();
        assert_eq!(
            engine.evaluate(&q),
            Ok(true),
            "P11 -knows-> P12 -knows-> P11 is a cycle"
        );
    }
}
