//! A sorted triple-store property-path evaluator (the "Virtuoso" archetype of
//! Table V).
//!
//! RDF stores keep triples in a handful of sorted orderings and answer
//! SPARQL 1.1 property paths by iterating a transitive-closure operator per
//! path step, probing the sorted indexes with binary search. This module
//! follows that design: triples sorted in SPO order, per-block fixpoint
//! iteration over the frontier of reachable vertices, and binary-search range
//! scans for every probe.

use rlc_core::engine::{check_vertex_range, Prepared, ReachabilityEngine};
use rlc_core::{Constraint, QueryError};
use rlc_graph::{Label, LabeledGraph, VertexId};
use std::collections::HashSet;

/// See the module documentation.
pub struct TripleStoreEngine {
    /// Triples `(subject, predicate, object)` sorted lexicographically —
    /// the SPO index.
    spo: Vec<(VertexId, Label, VertexId)>,
    /// Number of vertices of the loaded graph, for query id validation.
    vertices: usize,
}

impl TripleStoreEngine {
    /// Loads a graph into the engine's storage model.
    pub fn load(graph: &LabeledGraph) -> Self {
        let mut spo: Vec<(VertexId, Label, VertexId)> = graph
            .edges()
            .map(|e| (e.source, e.label, e.target))
            .collect();
        spo.sort_unstable();
        TripleStoreEngine {
            spo,
            vertices: graph.vertex_count(),
        }
    }

    /// Objects of triples `(subject, predicate, ?)` via binary-search range
    /// scan on the SPO index.
    fn objects(&self, subject: VertexId, predicate: Label) -> impl Iterator<Item = VertexId> + '_ {
        let start = self
            .spo
            .partition_point(|&(s, p, _)| (s, p) < (subject, predicate));
        self.spo[start..]
            .iter()
            .take_while(move |&&(s, p, _)| s == subject && p == predicate)
            .map(|&(_, _, o)| o)
    }

    /// The set of vertices reachable from `sources` by one or more
    /// repetitions of `block`, computed as a per-repetition fixpoint (the
    /// transitive-closure operator of the store).
    fn block_closure(&self, sources: &HashSet<VertexId>, block: &[Label]) -> HashSet<VertexId> {
        let mut result: HashSet<VertexId> = HashSet::new();
        // `frontier` holds vertices sitting on a repetition boundary.
        let mut frontier: HashSet<VertexId> = sources.clone();
        let mut seen_boundary: HashSet<VertexId> = sources.clone();
        loop {
            // One repetition of the block: a chain of |block| join steps.
            let mut current: HashSet<VertexId> = frontier.clone();
            for &label in block {
                let mut next: HashSet<VertexId> = HashSet::new();
                for &v in &current {
                    next.extend(self.objects(v, label));
                }
                current = next;
                if current.is_empty() {
                    break;
                }
            }
            // `current` now holds vertices one full repetition further.
            let mut new_boundary: HashSet<VertexId> = HashSet::new();
            for v in current {
                result.insert(v);
                if seen_boundary.insert(v) {
                    new_boundary.insert(v);
                }
            }
            if new_boundary.is_empty() {
                return result;
            }
            frontier = new_boundary;
        }
    }
}

impl ReachabilityEngine for TripleStoreEngine {
    fn name(&self) -> &str {
        "Virtuoso-like (triple store)"
    }

    fn prepare(&self, constraint: &Constraint) -> Result<Prepared, QueryError> {
        // The store evaluates path steps directly from the validated block
        // structure carried by every `Prepared`; there is no engine-specific
        // artifact to compile (per-block closures depend on the source).
        Ok(Prepared::new(constraint.clone(), self.name(), ()))
    }

    fn evaluate_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> Result<bool, QueryError> {
        check_vertex_range(source, target, self.vertices)?;
        let mut frontier: HashSet<VertexId> = HashSet::new();
        frontier.insert(source);
        for block in prepared.constraint().blocks() {
            frontier = self.block_closure(&frontier, block);
            if frontier.is_empty() {
                return Ok(false);
            }
        }
        Ok(frontier.contains(&target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_baselines::BfsEngine;
    use rlc_core::Query;
    use rlc_graph::examples::{fig1_graph, fig2_graph};
    use rlc_graph::generate::{barabasi_albert, SyntheticConfig};

    #[test]
    fn agrees_with_oracle_on_fig2() {
        let g = fig2_graph();
        let engine = TripleStoreEngine::load(&g);
        let oracle = BfsEngine::new(&g);
        let l1 = g.labels().resolve("l1").unwrap();
        let l2 = g.labels().resolve("l2").unwrap();
        let l3 = g.labels().resolve("l3").unwrap();
        for s in g.vertices() {
            for t in g.vertices() {
                for blocks in [
                    vec![vec![l1]],
                    vec![vec![l2, l1]],
                    vec![vec![l1, l2]],
                    vec![vec![l2], vec![l3]],
                ] {
                    let q = Query::concat(s, t, blocks).unwrap();
                    assert_eq!(engine.evaluate(&q), oracle.evaluate(&q), "({s},{t})");
                }
            }
        }
    }

    #[test]
    fn agrees_with_oracle_on_random_graph() {
        let g = barabasi_albert(&SyntheticConfig::new(60, 3.0, 3, 13));
        let engine = TripleStoreEngine::load(&g);
        let oracle = BfsEngine::new(&g);
        let l0 = rlc_graph::Label(0);
        let l1 = rlc_graph::Label(1);
        for s in (0..g.vertex_count() as u32).step_by(7) {
            for t in (0..g.vertex_count() as u32).step_by(5) {
                let q = Query::rlc(s, t, vec![l0, l1]).unwrap();
                assert_eq!(engine.evaluate(&q), oracle.evaluate(&q));
            }
        }
    }

    #[test]
    fn knows_cycle_is_found() {
        let g = fig1_graph();
        let engine = TripleStoreEngine::load(&g);
        let knows = g.labels().resolve("knows").unwrap();
        let q = Query::rlc(
            g.vertex_id("P11").unwrap(),
            g.vertex_id("P11").unwrap(),
            vec![knows],
        )
        .unwrap();
        assert_eq!(engine.evaluate(&q), Ok(true));
    }
}
