//! # rlc
//!
//! Facade crate of the RLC index reproduction ("A Reachability Index for
//! Recursive Label-Concatenated Graph Queries", ICDE 2023). It re-exports the
//! public API of the workspace crates so downstream users can depend on a
//! single crate:
//!
//! * [`graph`] — edge-labeled graph substrate, generators, statistics, I/O;
//! * [`index`] — the RLC index, its builder, queries, hybrid evaluation, and
//!   the [`index::engine::ReachabilityEngine`] evaluator abstraction;
//! * [`baselines`] — online traversals (BFS, BiBFS, DFS) and the extended
//!   transitive closure, with their engine adapters;
//! * [`shard`] — the vertex-partitioned sharded engine: per-shard indexes,
//!   boundary-hub stitching, and the `RSH1` manifest format;
//! * [`workloads`] — query-set generation and the Table III dataset catalog;
//! * [`engines`] — the simulated graph engines used as Table V comparators;
//! * [`serve`] — the long-running HTTP query service: admission control,
//!   micro-batching through the shared `PlanCache`, and hot index swap;
//! * [`obs`] — the observability substrate: the lock-free metrics registry,
//!   the `span!` timing macro, query EXPLAIN trace trees, and the
//!   exposition-format renderer/parser behind `GET /metrics`.
//!
//! Every evaluator implements `ReachabilityEngine`, so the same code drives
//! the index, the online baselines and the simulated engines. The API is a
//! prepare/execute split: `prepare` compiles a constraint once, and
//! `evaluate_prepared` reuses the artifact across vertex pairs; one-shot
//! `evaluate` and the constraint-grouping `BatchPlan` build on top:
//!
//! ```
//! use rlc::prelude::*;
//!
//! let graph = rlc::graph::examples::fig1_graph();
//! let index = RlcIndex::build(&graph, 2);
//! let engine = IndexEngine::new(&graph, &index);
//! let rlc_query = RlcQuery::from_names(&graph, "A14", "A19", &["debits", "credits"]).unwrap();
//! let query = Query::from(&rlc_query);
//! assert_eq!(engine.evaluate(&query), Ok(true));
//!
//! // Prepare once, execute for many pairs:
//! let prepared = engine.prepare(query.constraint()).unwrap();
//! assert_eq!(engine.evaluate_prepared(query.source, query.target, &prepared), Ok(true));
//!
//! // Batches group by constraint so each distinct constraint is prepared once:
//! let batch = vec![query.clone(), query];
//! let plan = BatchPlan::new(&batch);
//! assert_eq!(plan.group_count(), 1);
//! assert_eq!(plan.execute(&engine), vec![Ok(true), Ok(true)]);
//!
//! // A PlanCache shares preparations across batches: repeated batches
//! // prepare each distinct constraint once per process, not per execution.
//! let cache = PlanCache::new();
//! for _ in 0..3 {
//!     assert_eq!(plan.execute_cached(&engine, &cache), vec![Ok(true), Ok(true)]);
//! }
//! assert_eq!(cache.stats().misses, 1);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Edge-labeled graph substrate (re-export of [`rlc_graph`]).
pub use rlc_graph as graph;

/// The RLC index (re-export of [`rlc_core`]).
pub use rlc_core as index;

/// Baseline evaluators (re-export of [`rlc_baselines`]).
pub use rlc_baselines as baselines;

/// The vertex-partitioned sharded engine (re-export of [`rlc_shard`]).
pub use rlc_shard as shard;

/// Workload and dataset generation (re-export of [`rlc_workloads`]).
pub use rlc_workloads as workloads;

/// Simulated graph engines (re-export of [`rlc_engine_sim`]).
pub use rlc_engine_sim as engines;

/// The HTTP query service (re-export of [`rlc_serve`]).
pub use rlc_serve as serve;

/// Metrics, spans, and query EXPLAIN (re-export of [`rlc_obs`]).
pub use rlc_obs as obs;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use rlc_baselines::{
        BfsEngine, BiBfsEngine, DfsEngine, EtcBuildConfig, EtcEngine, EtcIndex,
    };
    pub use rlc_core::engine::{
        HybridEngine, IndexEngine, PrepareCounting, Prepared, ReachabilityEngine,
    };
    pub use rlc_core::{
        build_index, kernel_name, set_kernel, BatchPlan, BuildConfig, Constraint, KernelChoice,
        PlanCache, Query, QueryError, RlcIndex, RlcQuery,
    };
    pub use rlc_graph::{GraphBuilder, Label, LabeledGraph, PartitionStrategy, VertexId};
    pub use rlc_serve::{Epoch, IndexSlot, ServeConfig, Server};
    pub use rlc_shard::{ShardBuildConfig, ShardedEngine, ShardedIndex};
    pub use rlc_workloads::{generate_query_set, QueryGenConfig};
}
