//! # rlc
//!
//! Facade crate of the RLC index reproduction ("A Reachability Index for
//! Recursive Label-Concatenated Graph Queries", ICDE 2023). It re-exports the
//! public API of the workspace crates so downstream users can depend on a
//! single crate:
//!
//! * [`graph`] — edge-labeled graph substrate, generators, statistics, I/O;
//! * [`index`] — the RLC index, its builder, queries, hybrid evaluation, and
//!   the [`index::engine::ReachabilityEngine`] evaluator abstraction;
//! * [`baselines`] — online traversals (BFS, BiBFS, DFS) and the extended
//!   transitive closure, with their engine adapters;
//! * [`workloads`] — query-set generation and the Table III dataset catalog;
//! * [`engines`] — the simulated graph engines used as Table V comparators.
//!
//! Every evaluator implements `ReachabilityEngine`, so the same code drives
//! the index, the online baselines and the simulated engines — including
//! rayon-parallel batch evaluation:
//!
//! ```
//! use rlc::prelude::*;
//!
//! let graph = rlc::graph::examples::fig1_graph();
//! let index = RlcIndex::build(&graph, 2);
//! let engine = IndexEngine::new(&graph, &index);
//! let query = RlcQuery::from_names(&graph, "A14", "A19", &["debits", "credits"]).unwrap();
//! assert!(engine.evaluate(&query));
//! assert_eq!(engine.evaluate_batch(&[query]), vec![true]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Edge-labeled graph substrate (re-export of [`rlc_graph`]).
pub use rlc_graph as graph;

/// The RLC index (re-export of [`rlc_core`]).
pub use rlc_core as index;

/// Baseline evaluators (re-export of [`rlc_baselines`]).
pub use rlc_baselines as baselines;

/// Workload and dataset generation (re-export of [`rlc_workloads`]).
pub use rlc_workloads as workloads;

/// Simulated graph engines (re-export of [`rlc_engine_sim`]).
pub use rlc_engine_sim as engines;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use rlc_baselines::{
        BfsEngine, BiBfsEngine, DfsEngine, EtcBuildConfig, EtcEngine, EtcIndex,
    };
    pub use rlc_core::engine::{HybridEngine, IndexEngine, ReachabilityEngine};
    pub use rlc_core::{build_index, BuildConfig, ConcatQuery, RlcIndex, RlcQuery};
    pub use rlc_graph::{GraphBuilder, Label, LabeledGraph, VertexId};
    pub use rlc_workloads::{generate_query_set, QueryGenConfig};
}
